"""Property-based tests (hypothesis) for the graph substrate invariants."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    are_internally_disjoint,
    bfs_distances,
    connected_components,
    diameter,
    is_connected,
    is_neighborhood_set,
    local_node_connectivity,
    node_connectivity,
    shortest_path,
    vertex_disjoint_paths,
)
from repro.graphs.generators import gnp_random_graph
from repro.core.concentrators import greedy_neighborhood_set, lemma15_lower_bound


SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graph(draw, min_nodes=2, max_nodes=16):
    """A random G(n, p) sample with hypothesis-controlled n, p and seed."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    p = draw(st.floats(min_value=0.0, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    return gnp_random_graph(n, p, seed=seed)


@st.composite
def connected_graph(draw, min_nodes=3, max_nodes=14):
    """A connected random graph (spanning tree plus random extras)."""
    from repro.graphs.generators import random_connected_graph

    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    extra = draw(st.floats(min_value=0.0, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    return random_connected_graph(n, extra_edge_probability=extra, seed=seed)


class TestBasicInvariants:
    @SETTINGS
    @given(random_graph())
    def test_handshake_lemma(self, graph):
        assert sum(graph.degrees().values()) == 2 * graph.number_of_edges()

    @SETTINGS
    @given(random_graph())
    def test_components_partition_nodes(self, graph):
        components = connected_components(graph)
        seen = set()
        for component in components:
            assert not (component & seen)
            seen |= component
        assert seen == set(graph.nodes())

    @SETTINGS
    @given(random_graph())
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @SETTINGS
    @given(random_graph(), st.integers(min_value=0, max_value=10 ** 6))
    def test_subgraph_monotone(self, graph, seed):
        import random as _random

        nodes = graph.nodes()
        rng = _random.Random(seed)
        keep = [node for node in nodes if rng.random() < 0.5]
        sub = graph.subgraph(keep)
        assert set(sub.nodes()) <= set(nodes)
        for u, v in sub.edges():
            assert graph.has_edge(u, v)


class TestDistanceInvariants:
    @SETTINGS
    @given(connected_graph())
    def test_bfs_distance_symmetry(self, graph):
        nodes = graph.nodes()
        first, last = nodes[0], nodes[-1]
        forward = bfs_distances(graph, first).get(last)
        backward = bfs_distances(graph, last).get(first)
        assert forward == backward

    @SETTINGS
    @given(connected_graph())
    def test_triangle_inequality_through_any_node(self, graph):
        nodes = graph.nodes()
        if len(nodes) < 3:
            return
        a, b, c = nodes[0], nodes[len(nodes) // 2], nodes[-1]
        dist = lambda x, y: bfs_distances(graph, x).get(y, float("inf"))
        assert dist(a, c) <= dist(a, b) + dist(b, c)

    @SETTINGS
    @given(connected_graph())
    def test_shortest_path_length_matches_distance(self, graph):
        nodes = graph.nodes()
        path = shortest_path(graph, nodes[0], nodes[-1])
        assert path is not None
        assert len(path) - 1 == bfs_distances(graph, nodes[0])[nodes[-1]]

    @SETTINGS
    @given(connected_graph())
    def test_diameter_bounds_every_distance(self, graph):
        diam = diameter(graph)
        nodes = graph.nodes()
        distances = bfs_distances(graph, nodes[0])
        assert max(distances.values()) <= diam


class TestConnectivityInvariants:
    @SETTINGS
    @given(connected_graph())
    def test_connectivity_le_min_degree(self, graph):
        assert node_connectivity(graph) <= graph.min_degree()

    @SETTINGS
    @given(connected_graph())
    def test_menger_pathcount_matches_local_connectivity(self, graph):
        nodes = graph.nodes()
        if len(nodes) < 2:
            return
        source, target = nodes[0], nodes[-1]
        kappa = local_node_connectivity(graph, source, target)
        paths = vertex_disjoint_paths(graph, source, target)
        assert len(paths) == kappa
        assert are_internally_disjoint(paths)

    @SETTINGS
    @given(connected_graph())
    def test_removing_fewer_than_kappa_nodes_keeps_connectivity(self, graph):
        kappa = node_connectivity(graph)
        if kappa <= 1:
            return
        victims = graph.nodes()[: kappa - 1]
        remaining = graph.without_nodes(victims)
        assert is_connected(remaining)


class TestNeighborhoodSetInvariants:
    @SETTINGS
    @given(random_graph(min_nodes=3, max_nodes=20))
    def test_greedy_set_is_valid_and_large_enough(self, graph):
        selected = greedy_neighborhood_set(graph)
        assert is_neighborhood_set(graph, selected)
        assert len(selected) >= lemma15_lower_bound(graph)

    @SETTINGS
    @given(random_graph(min_nodes=3, max_nodes=20), st.integers(min_value=1, max_value=5))
    def test_greedy_set_respects_limit(self, graph, limit):
        selected = greedy_neighborhood_set(graph, limit=limit)
        assert len(selected) <= limit
        assert is_neighborhood_set(graph, selected)

"""Unit tests for structural property predicates (neighbourhood sets, two-trees, girth)."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs import (
    Graph,
    degree_histogram,
    find_two_trees_roots,
    girth,
    has_two_trees_property,
    have_disjoint_neighborhoods,
    is_independent_set,
    is_neighborhood_set,
    is_regular,
    lies_on_short_cycle,
    max_degree_threshold,
    pairwise_distance_at_least,
    satisfies_circular_degree_bound,
    satisfies_two_trees_property,
)
from repro.graphs import generators, synthetic


class TestIndependence:
    def test_independent_set(self):
        graph = generators.cycle_graph(6)
        assert is_independent_set(graph, [0, 2, 4])
        assert not is_independent_set(graph, [0, 1])

    def test_empty_set_is_independent(self):
        assert is_independent_set(generators.cycle_graph(5), [])

    def test_missing_node_rejected(self):
        with pytest.raises(NodeNotFoundError):
            is_independent_set(generators.cycle_graph(5), [99])

    def test_disjoint_neighborhoods(self):
        graph = generators.cycle_graph(9)
        assert have_disjoint_neighborhoods(graph, [0, 3, 6])
        assert not have_disjoint_neighborhoods(graph, [0, 2])

    def test_neighborhood_set_requires_both(self):
        graph = generators.cycle_graph(9)
        assert is_neighborhood_set(graph, [0, 3, 6])
        # Distance 2 apart: independent but neighbourhoods overlap.
        assert not is_neighborhood_set(graph, [0, 2])
        # Adjacent: not even independent.
        assert not is_neighborhood_set(graph, [0, 1])

    def test_neighborhood_set_is_distance3(self):
        graph = generators.cycle_graph(12)
        members = [0, 3, 6, 9]
        assert is_neighborhood_set(graph, members)
        assert pairwise_distance_at_least(graph, members, 3)

    def test_pairwise_distance(self):
        graph = generators.path_graph(10)
        assert pairwise_distance_at_least(graph, [0, 5, 9], 4)
        assert not pairwise_distance_at_least(graph, [0, 2], 4)


class TestShortCycles:
    def test_triangle_detection(self):
        graph = generators.complete_graph(4)
        assert lies_on_short_cycle(graph, 0, 3)

    def test_square_detection(self):
        graph = generators.grid_graph(2, 2)
        assert not lies_on_short_cycle(graph, (0, 0), 3)
        assert lies_on_short_cycle(graph, (0, 0), 4)

    def test_long_cycle_not_detected(self):
        graph = generators.cycle_graph(8)
        assert not lies_on_short_cycle(graph, 0, 4)

    def test_generic_bound(self):
        graph = generators.cycle_graph(6)
        assert lies_on_short_cycle(graph, 0, 6)
        assert not lies_on_short_cycle(graph, 0, 5)

    def test_tree_has_no_cycles(self):
        graph = generators.tree_graph(2, 3)
        assert not lies_on_short_cycle(graph, 0, 4)

    def test_max_length_below_three(self):
        graph = generators.complete_graph(3)
        assert not lies_on_short_cycle(graph, 0, 2)

    def test_missing_node(self):
        with pytest.raises(NodeNotFoundError):
            lies_on_short_cycle(generators.cycle_graph(5), 99)


class TestGirth:
    def test_cycle_girth(self):
        assert girth(generators.cycle_graph(7)) == 7

    def test_complete_graph_girth(self):
        assert girth(generators.complete_graph(5)) == 3

    def test_petersen_girth(self, petersen):
        assert girth(petersen) == 5

    def test_hypercube_girth(self):
        assert girth(generators.hypercube_graph(3)) == 4

    def test_tree_girth_infinite(self):
        assert girth(generators.tree_graph(2, 3)) == float("inf")

    def test_grid_girth(self):
        assert girth(generators.grid_graph(3, 3)) == 4


class TestTwoTrees:
    def test_cycle_has_property(self):
        graph = generators.cycle_graph(12)
        assert has_two_trees_property(graph)
        roots = find_two_trees_roots(graph)
        assert roots is not None
        assert satisfies_two_trees_property(graph, *roots)

    def test_cycle_explicit_roots(self):
        graph = generators.cycle_graph(12)
        assert satisfies_two_trees_property(graph, 0, 6)

    def test_cycle_close_roots_fail(self):
        graph = generators.cycle_graph(12)
        assert not satisfies_two_trees_property(graph, 0, 2)
        assert not satisfies_two_trees_property(graph, 0, 3)

    def test_same_root_fails(self):
        graph = generators.cycle_graph(12)
        assert not satisfies_two_trees_property(graph, 0, 0)

    def test_small_cycle_fails(self):
        # In C_7 every pair is within distance 3, so depth-2 trees overlap.
        graph = generators.cycle_graph(7)
        assert not has_two_trees_property(graph)

    def test_hypercube_fails(self):
        # Q_3 has girth 4: every node lies on a 4-cycle.
        assert not has_two_trees_property(generators.hypercube_graph(3))

    def test_petersen_fails(self, petersen):
        # Girth 5 but diameter 2 < 4.
        assert not has_two_trees_property(petersen)

    def test_grid_fails(self):
        assert not has_two_trees_property(generators.grid_graph(3, 3))

    def test_synthetic_two_trees_graph(self):
        graph, r1, r2 = synthetic.two_trees_graph(t=2)
        assert satisfies_two_trees_property(graph, r1, r2)
        assert has_two_trees_property(graph)

    def test_long_path_has_property(self):
        graph = generators.path_graph(12)
        assert satisfies_two_trees_property(graph, 2, 9)

    def test_missing_node(self):
        graph = generators.cycle_graph(10)
        with pytest.raises(NodeNotFoundError):
            satisfies_two_trees_property(graph, 0, 99)


class TestDegreeStatistics:
    def test_degree_histogram(self):
        graph = generators.star_graph(4)
        assert degree_histogram(graph) == {4: 1, 1: 4}

    def test_is_regular(self):
        assert is_regular(generators.cycle_graph(6))
        assert is_regular(generators.hypercube_graph(3))
        assert not is_regular(generators.star_graph(3))
        assert is_regular(Graph())

    def test_max_degree_threshold(self):
        assert max_degree_threshold(1000, 0.79) == pytest.approx(7.9)
        assert max_degree_threshold(0, 0.5) == 0
        with pytest.raises(ValueError):
            max_degree_threshold(-1, 0.5)

    def test_satisfies_circular_degree_bound(self):
        # A long cycle has max degree 2 << 0.79 * n^(1/3) for large n.
        assert satisfies_circular_degree_bound(generators.cycle_graph(50))
        # A star's hub degree dwarfs the threshold.
        assert not satisfies_circular_degree_bound(generators.star_graph(30))

"""Unit tests for the synthetic benchmark graphs (flower, two-trees, kernel-test)."""

import pytest

from repro.graphs import (
    is_connected,
    is_neighborhood_set,
    is_separating_set,
    node_connectivity,
    satisfies_two_trees_property,
)
from repro.graphs import synthetic


class TestFlowerGraph:
    @pytest.mark.parametrize("t,k", [(1, 3), (1, 9), (2, 5), (3, 4)])
    def test_connectivity_is_t_plus_1(self, t, k):
        graph, _flowers = synthetic.flower_graph(t=t, k=k)
        assert node_connectivity(graph) == t + 1

    @pytest.mark.parametrize("t,k", [(1, 5), (2, 5), (3, 4)])
    def test_flowers_form_neighborhood_set(self, t, k):
        graph, flowers = synthetic.flower_graph(t=t, k=k)
        assert len(flowers) == k
        assert is_neighborhood_set(graph, flowers)

    def test_flower_degrees(self):
        graph, flowers = synthetic.flower_graph(t=2, k=4)
        for flower in flowers:
            assert graph.degree(flower) == 3

    def test_size_formula(self):
        t, k = 2, 5
        graph, _ = synthetic.flower_graph(t=t, k=k)
        assert graph.number_of_nodes() == k * (t + 2) + k

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic.flower_graph(t=0, k=3)
        with pytest.raises(ValueError):
            synthetic.flower_graph(t=1, k=1)
        with pytest.raises(ValueError):
            synthetic.flower_graph(t=1, k=3, petal_slack=0)


class TestTwoTreesGraph:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_connectivity(self, t):
        graph, _r1, _r2 = synthetic.two_trees_graph(t=t)
        assert node_connectivity(graph) == t + 1

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_roots_witness_two_trees(self, t):
        graph, r1, r2 = synthetic.two_trees_graph(t=t)
        assert satisfies_two_trees_property(graph, r1, r2)

    def test_root_degrees(self):
        graph, r1, r2 = synthetic.two_trees_graph(t=2)
        assert graph.degree(r1) == 3
        assert graph.degree(r2) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic.two_trees_graph(t=0)
        with pytest.raises(ValueError):
            synthetic.two_trees_graph(t=1, core_slack=-1)


class TestKernelTestGraph:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_connectivity(self, t):
        graph = synthetic.kernel_test_graph(t=t)
        assert node_connectivity(graph) == t + 1

    @pytest.mark.parametrize("t", [1, 2])
    def test_bridge_is_separating_set(self, t):
        graph = synthetic.kernel_test_graph(t=t)
        bridges = {("bridge", b) for b in range(t + 1)}
        assert is_separating_set(graph, bridges)

    def test_connected(self):
        assert is_connected(synthetic.kernel_test_graph(t=2))

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic.kernel_test_graph(t=0)

"""Unit tests for the directed DiGraph class."""

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graphs import DiGraph, Graph


class TestNodeOperations:
    def test_empty(self):
        digraph = DiGraph()
        assert digraph.number_of_nodes() == 0
        assert digraph.number_of_edges() == 0

    def test_add_and_remove_node(self):
        digraph = DiGraph()
        digraph.add_node("x")
        assert digraph.has_node("x")
        digraph.remove_node("x")
        assert not digraph.has_node("x")

    def test_remove_node_cleans_arcs(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2), (2, 0)])
        digraph.remove_node(1)
        assert digraph.edges() == [(2, 0)]

    def test_remove_missing_node(self):
        with pytest.raises(NodeNotFoundError):
            DiGraph().remove_node(0)

    def test_iteration_and_len(self):
        digraph = DiGraph(nodes=range(4))
        assert len(digraph) == 4
        assert sorted(digraph) == [0, 1, 2, 3]
        assert 2 in digraph


class TestArcOperations:
    def test_arcs_are_directed(self):
        digraph = DiGraph(edges=[(0, 1)])
        assert digraph.has_edge(0, 1)
        assert not digraph.has_edge(1, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DiGraph().add_edge(1, 1)

    def test_remove_edge(self):
        digraph = DiGraph(edges=[(0, 1), (1, 0)])
        digraph.remove_edge(0, 1)
        assert not digraph.has_edge(0, 1)
        assert digraph.has_edge(1, 0)

    def test_remove_missing_edge(self):
        with pytest.raises(EdgeNotFoundError):
            DiGraph(edges=[(0, 1)]).remove_edge(1, 0)

    def test_number_of_edges_counts_both_directions(self):
        digraph = DiGraph(edges=[(0, 1), (1, 0), (1, 2)])
        assert digraph.number_of_edges() == 3

    def test_edges_list(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2)])
        assert set(digraph.edges()) == {(0, 1), (1, 2)}


class TestNeighborhoods:
    def test_successors_predecessors(self):
        digraph = DiGraph(edges=[(0, 1), (0, 2), (3, 0)])
        assert digraph.successors(0) == {1, 2}
        assert digraph.predecessors(0) == {3}

    def test_degrees(self):
        digraph = DiGraph(edges=[(0, 1), (0, 2), (3, 0)])
        assert digraph.out_degree(0) == 2
        assert digraph.in_degree(0) == 1

    def test_missing_node_queries(self):
        digraph = DiGraph()
        with pytest.raises(NodeNotFoundError):
            digraph.successors(0)
        with pytest.raises(NodeNotFoundError):
            digraph.predecessors(0)
        with pytest.raises(NodeNotFoundError):
            digraph.out_degree(0)
        with pytest.raises(NodeNotFoundError):
            digraph.in_degree(0)

    def test_successors_returns_copy(self):
        digraph = DiGraph(edges=[(0, 1)])
        succ = digraph.successors(0)
        succ.add(99)
        assert digraph.successors(0) == {1}


class TestDerived:
    def test_copy(self):
        digraph = DiGraph(edges=[(0, 1)], name="d")
        clone = digraph.copy()
        clone.add_edge(1, 2)
        assert not digraph.has_node(2)
        assert clone.name == "d"

    def test_reverse(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2)])
        reversed_graph = digraph.reverse()
        assert reversed_graph.has_edge(1, 0)
        assert reversed_graph.has_edge(2, 1)
        assert not reversed_graph.has_edge(0, 1)

    def test_reverse_preserves_isolated_nodes(self):
        digraph = DiGraph(nodes=["solo"], edges=[(0, 1)])
        assert reversed_has_node(digraph.reverse(), "solo")

    def test_to_undirected(self):
        digraph = DiGraph(edges=[(0, 1), (1, 0), (1, 2)])
        undirected = digraph.to_undirected()
        assert isinstance(undirected, Graph)
        assert undirected.number_of_edges() == 2
        assert undirected.has_edge(2, 1)

    def test_subgraph(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2), (2, 3)])
        sub = digraph.subgraph([1, 2, 99])
        assert set(sub.nodes()) == {1, 2}
        assert sub.has_edge(1, 2)

    def test_equality(self):
        assert DiGraph(edges=[(0, 1)]) == DiGraph(edges=[(0, 1)])
        assert DiGraph(edges=[(0, 1)]) != DiGraph(edges=[(1, 0)])
        assert DiGraph() != "not a digraph"

    def test_repr(self):
        digraph = DiGraph(edges=[(0, 1)], name="srg")
        assert "srg" in repr(digraph)
        assert "|A|=1" in repr(digraph)


def reversed_has_node(digraph, node):
    return digraph.has_node(node)

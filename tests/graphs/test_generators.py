"""Unit tests for the graph family generators."""

import pytest

from repro.graphs import Graph, diameter, is_connected, is_regular, node_connectivity
from repro.graphs import generators


class TestDeterministicFamilies:
    def test_path(self):
        graph = generators.path_graph(6)
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 5
        assert graph.degree(0) == 1

    def test_path_requires_nodes(self):
        with pytest.raises(ValueError):
            generators.path_graph(0)

    def test_cycle(self):
        graph = generators.cycle_graph(7)
        assert graph.number_of_edges() == 7
        assert is_regular(graph)
        assert graph.degree(0) == 2

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_complete(self):
        graph = generators.complete_graph(6)
        assert graph.number_of_edges() == 15
        assert diameter(graph) == 1

    def test_complete_bipartite(self):
        graph = generators.complete_bipartite_graph(2, 3)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 6

    def test_complete_bipartite_validation(self):
        with pytest.raises(ValueError):
            generators.complete_bipartite_graph(0, 3)

    def test_star(self):
        graph = generators.star_graph(6)
        assert graph.degree(0) == 6
        assert graph.number_of_edges() == 6

    def test_wheel(self):
        graph = generators.wheel_graph(5)
        assert graph.number_of_nodes() == 6
        assert graph.degree(0) == 5
        assert node_connectivity(graph) == 3

    def test_grid(self):
        graph = generators.grid_graph(3, 4)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 3 * 3 + 2 * 4
        assert graph.degree((0, 0)) == 2
        assert graph.degree((1, 1)) == 4

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            generators.grid_graph(0, 3)

    def test_torus(self):
        graph = generators.torus_graph(4, 5)
        assert graph.number_of_nodes() == 20
        assert is_regular(graph)
        assert graph.degree((0, 0)) == 4

    def test_torus_validation(self):
        with pytest.raises(ValueError):
            generators.torus_graph(2, 5)


class TestInterconnectionNetworks:
    def test_hypercube_structure(self):
        graph = generators.hypercube_graph(4)
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 4 * 16 // 2
        assert is_regular(graph)
        assert diameter(graph) == 4

    def test_hypercube_adjacency_is_bitflip(self):
        graph = generators.hypercube_graph(3)
        assert graph.has_edge(0b000, 0b100)
        assert not graph.has_edge(0b000, 0b011)

    def test_hypercube_validation(self):
        with pytest.raises(ValueError):
            generators.hypercube_graph(0)

    def test_ccc_structure(self):
        graph = generators.cube_connected_cycles_graph(3)
        assert graph.number_of_nodes() == 3 * 8
        assert is_regular(graph)
        assert graph.degree((0, 0)) == 3
        assert is_connected(graph)

    def test_ccc_connectivity(self):
        assert node_connectivity(generators.cube_connected_cycles_graph(3)) == 3

    def test_ccc_validation(self):
        with pytest.raises(ValueError):
            generators.cube_connected_cycles_graph(2)

    def test_butterfly_wrapped(self):
        graph = generators.butterfly_graph(3, wrapped=True)
        assert graph.number_of_nodes() == 3 * 8
        assert is_connected(graph)
        assert graph.max_degree() == 4

    def test_butterfly_unwrapped(self):
        graph = generators.butterfly_graph(3, wrapped=False)
        assert graph.number_of_nodes() == 4 * 8
        assert is_connected(graph)

    def test_butterfly_validation(self):
        with pytest.raises(ValueError):
            generators.butterfly_graph(1)

    def test_circulant(self):
        graph = generators.circulant_graph(10, [1, 2])
        assert is_regular(graph)
        assert graph.degree(0) == 4
        assert node_connectivity(graph) == 4

    def test_circulant_normalises_offsets(self):
        first = generators.circulant_graph(10, [1, 2])
        second = generators.circulant_graph(10, [-1, 2, 12, 1])
        assert first == second

    def test_circulant_validation(self):
        with pytest.raises(ValueError):
            generators.circulant_graph(10, [0])
        with pytest.raises(ValueError):
            generators.circulant_graph(2, [1])

    def test_harary_even(self):
        graph = generators.harary_graph(4, 9)
        assert node_connectivity(graph) == 4

    def test_harary_odd(self):
        graph = generators.harary_graph(3, 8)
        assert node_connectivity(graph) == 3

    def test_harary_validation(self):
        with pytest.raises(ValueError):
            generators.harary_graph(1, 5)
        with pytest.raises(ValueError):
            generators.harary_graph(3, 3)
        with pytest.raises(ValueError):
            generators.harary_graph(3, 9)

    def test_de_bruijn(self):
        graph = generators.de_bruijn_graph(2, 3)
        assert graph.number_of_nodes() == 8
        assert is_connected(graph)
        assert graph.max_degree() <= 4
        # Shift adjacency: 010 (2) shifts to 101 (5) and 100 (4).
        assert graph.has_edge(0b010, 0b101)
        assert graph.has_edge(0b010, 0b100)

    def test_de_bruijn_base3(self):
        graph = generators.de_bruijn_graph(3, 2)
        assert graph.number_of_nodes() == 9
        assert is_connected(graph)
        assert graph.max_degree() <= 6

    def test_de_bruijn_validation(self):
        with pytest.raises(ValueError):
            generators.de_bruijn_graph(1, 3)
        with pytest.raises(ValueError):
            generators.de_bruijn_graph(2, 0)

    def test_shuffle_exchange(self):
        graph = generators.shuffle_exchange_graph(3)
        assert graph.number_of_nodes() == 8
        assert is_connected(graph)
        assert graph.max_degree() <= 3
        # Exchange edge flips the last bit; shuffle edge rotates the bits.
        assert graph.has_edge(0b010, 0b011)
        assert graph.has_edge(0b011, 0b110)

    def test_shuffle_exchange_validation(self):
        with pytest.raises(ValueError):
            generators.shuffle_exchange_graph(1)

    def test_petersen(self):
        graph = generators.petersen_graph()
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 15
        assert is_regular(graph)

    def test_barbell(self):
        graph = generators.barbell_graph(4, 2)
        assert graph.number_of_nodes() == 10
        assert is_connected(graph)

    def test_barbell_validation(self):
        with pytest.raises(ValueError):
            generators.barbell_graph(2, 1)

    def test_tree(self):
        graph = generators.tree_graph(2, 3)
        assert graph.number_of_nodes() == 1 + 2 + 4 + 8
        assert graph.number_of_edges() == graph.number_of_nodes() - 1


class TestRandomFamilies:
    def test_gnp_reproducible(self):
        first = generators.gnp_random_graph(30, 0.2, seed=7)
        second = generators.gnp_random_graph(30, 0.2, seed=7)
        assert first == second

    def test_gnp_extremes(self):
        empty = generators.gnp_random_graph(10, 0.0, seed=1)
        full = generators.gnp_random_graph(10, 1.0, seed=1)
        assert empty.number_of_edges() == 0
        assert full.number_of_edges() == 45

    def test_gnp_validation(self):
        with pytest.raises(ValueError):
            generators.gnp_random_graph(-1, 0.5)
        with pytest.raises(ValueError):
            generators.gnp_random_graph(5, 1.5)

    def test_random_regular(self):
        graph = generators.random_regular_graph(3, 12, seed=3)
        assert is_regular(graph)
        assert graph.degree(0) == 3

    def test_random_regular_validation(self):
        with pytest.raises(ValueError):
            generators.random_regular_graph(3, 3, seed=1)
        with pytest.raises(ValueError):
            generators.random_regular_graph(3, 7, seed=1)

    def test_random_connected(self):
        graph = generators.random_connected_graph(25, seed=5)
        assert is_connected(graph)
        assert graph.number_of_nodes() == 25

    def test_random_connected_reproducible(self):
        assert generators.random_connected_graph(20, seed=2) == generators.random_connected_graph(20, seed=2)

    def test_random_k_connected(self):
        graph = generators.random_k_connected_graph(20, 3, seed=11)
        assert node_connectivity(graph) >= 3

    def test_random_k_connected_validation(self):
        with pytest.raises(ValueError):
            generators.random_k_connected_graph(20, 1, seed=1)


class TestNamedRegistry:
    def test_by_name(self):
        graph = generators.by_name("petersen")
        assert graph.number_of_nodes() == 10

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            generators.by_name("no-such-graph")

    def test_all_named_graphs_connected(self):
        for name in generators.NAMED_SMALL_GRAPHS:
            assert is_connected(generators.by_name(name)), name

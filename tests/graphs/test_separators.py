"""Unit tests for minimum vertex separators and separating-set predicates."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs import (
    Graph,
    is_separating_set,
    minimal_separating_set,
    minimum_pair_separator,
    minimum_separator,
    node_connectivity,
    separates,
)
from repro.graphs import generators


class TestIsSeparatingSet:
    def test_path_middle_node(self):
        graph = generators.path_graph(5)
        assert is_separating_set(graph, {2})

    def test_path_endpoint_is_not(self):
        graph = generators.path_graph(5)
        assert not is_separating_set(graph, {0})

    def test_cycle_needs_two(self):
        graph = generators.cycle_graph(6)
        assert not is_separating_set(graph, {0})
        assert is_separating_set(graph, {0, 3})

    def test_adjacent_pair_does_not_separate_cycle(self):
        graph = generators.cycle_graph(6)
        assert not is_separating_set(graph, {0, 1})

    def test_removing_everything_is_not_separating(self):
        graph = generators.path_graph(3)
        assert not is_separating_set(graph, {0, 1, 2})

    def test_unknown_node_rejected(self):
        graph = generators.path_graph(3)
        with pytest.raises(NodeNotFoundError):
            is_separating_set(graph, {99})

    def test_complete_graph_has_none(self):
        graph = generators.complete_graph(4)
        assert not is_separating_set(graph, {0})
        assert not is_separating_set(graph, {0, 1})
        assert not is_separating_set(graph, {0, 1, 2})


class TestSeparates:
    def test_pair_separation(self):
        graph = generators.path_graph(5)
        assert separates(graph, {2}, 0, 4)
        assert not separates(graph, {3}, 0, 2)

    def test_endpoint_in_candidate_rejected(self):
        graph = generators.path_graph(5)
        with pytest.raises(ValueError):
            separates(graph, {0}, 0, 4)

    def test_missing_endpoint_rejected(self):
        graph = generators.path_graph(5)
        with pytest.raises(NodeNotFoundError):
            separates(graph, {2}, 0, 99)


class TestMinimumPairSeparator:
    def test_cycle_pair(self):
        graph = generators.cycle_graph(8)
        separator = minimum_pair_separator(graph, 0, 4)
        assert len(separator) == 2
        assert separates(graph, separator, 0, 4)

    def test_hypercube_pair(self):
        graph = generators.hypercube_graph(3)
        separator = minimum_pair_separator(graph, 0, 7)
        assert len(separator) == 3
        assert separates(graph, separator, 0, 7)

    def test_adjacent_rejected(self):
        graph = generators.cycle_graph(5)
        with pytest.raises(ValueError):
            minimum_pair_separator(graph, 0, 1)

    def test_same_node_rejected(self):
        graph = generators.cycle_graph(5)
        with pytest.raises(ValueError):
            minimum_pair_separator(graph, 0, 0)

    def test_missing_node_rejected(self):
        graph = generators.cycle_graph(5)
        with pytest.raises(NodeNotFoundError):
            minimum_pair_separator(graph, 0, 77)


class TestMinimumSeparator:
    def test_size_equals_connectivity(self):
        for graph in (
            generators.cycle_graph(9),
            generators.hypercube_graph(3),
            generators.petersen_graph(),
            generators.grid_graph(3, 4),
            generators.circulant_graph(10, [1, 2]),
        ):
            separator = minimum_separator(graph)
            assert len(separator) == node_connectivity(graph)
            assert is_separating_set(graph, separator)

    def test_path_cut_vertex(self):
        graph = generators.path_graph(7)
        separator = minimum_separator(graph)
        assert len(separator) == 1
        assert is_separating_set(graph, separator)

    def test_complete_graph_rejected(self):
        with pytest.raises(ValueError):
            minimum_separator(generators.complete_graph(5))

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError):
            minimum_separator(Graph(edges=[(0, 1)]))

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            minimum_separator(Graph(edges=[(0, 1)], nodes=[2]))


class TestMinimalSeparatingSet:
    def test_default_is_minimum(self):
        graph = generators.cycle_graph(8)
        assert len(minimal_separating_set(graph)) == 2

    def test_requested_larger_size(self):
        graph = generators.cycle_graph(10)
        enlarged = minimal_separating_set(graph, size=4)
        assert len(enlarged) == 4
        assert is_separating_set(graph, enlarged)

    def test_requested_too_small(self):
        graph = generators.cycle_graph(8)
        with pytest.raises(ValueError):
            minimal_separating_set(graph, size=1)

"""Unit tests for graph operations (products, unions, relabelling, augmentation)."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs import Graph, diameter, is_connected, node_connectivity
from repro.graphs import generators
from repro.graphs.operations import (
    add_clique,
    cartesian_product,
    complement,
    convert_node_labels_to_integers,
    disjoint_union,
    edge_subdivision,
    graph_union,
    map_nodes,
    relabel,
)


class TestRelabel:
    def test_relabel_basic(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        renamed = relabel(graph, {0: "a", 1: "b", 2: "c"})
        assert renamed.has_edge("a", "b")
        assert renamed.has_edge("b", "c")
        assert not renamed.has_node(0)

    def test_relabel_partial(self):
        graph = Graph(edges=[(0, 1)])
        renamed = relabel(graph, {0: "zero"})
        assert renamed.has_edge("zero", 1)

    def test_relabel_non_injective_rejected(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(ValueError):
            relabel(graph, {0: "x", 1: "x"})

    def test_convert_to_integers(self):
        graph = Graph(edges=[("a", "b"), ("b", "c")])
        converted, mapping = convert_node_labels_to_integers(graph)
        assert set(converted.nodes()) == {0, 1, 2}
        assert converted.number_of_edges() == 2
        assert set(mapping) == {"a", "b", "c"}

    def test_map_nodes(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        doubled = map_nodes(graph, lambda node: node * 10)
        assert doubled.has_edge(0, 10)
        assert doubled.has_edge(10, 20)


class TestUnions:
    def test_disjoint_union_sizes(self):
        a = generators.cycle_graph(4)
        b = generators.path_graph(3)
        union = disjoint_union(a, b)
        assert union.number_of_nodes() == 7
        assert union.number_of_edges() == 4 + 2
        assert not is_connected(union)

    def test_graph_union_merges(self):
        a = Graph(edges=[(0, 1)])
        b = Graph(edges=[(1, 2)])
        union = graph_union(a, b)
        assert union.number_of_nodes() == 3
        assert union.has_edge(0, 1)
        assert union.has_edge(1, 2)


class TestCartesianProduct:
    def test_product_sizes(self):
        a = generators.path_graph(2)
        b = generators.path_graph(3)
        product = cartesian_product(a, b)
        assert product.number_of_nodes() == 6
        assert product.number_of_edges() == 2 * 2 + 3 * 1

    def test_hypercube_as_product_of_edges(self):
        k2 = generators.path_graph(2)
        q2 = cartesian_product(k2, k2)
        # Q2 is the 4-cycle.
        assert q2.number_of_nodes() == 4
        assert q2.number_of_edges() == 4
        assert diameter(q2) == 2

    def test_product_connectivity(self):
        c4 = generators.cycle_graph(4)
        torus_like = cartesian_product(c4, c4)
        assert node_connectivity(torus_like) == 4


class TestComplement:
    def test_complement_of_complete_is_empty(self):
        comp = complement(generators.complete_graph(5))
        assert comp.number_of_edges() == 0

    def test_complement_involution(self):
        graph = generators.cycle_graph(6)
        assert complement(complement(graph)) == graph

    def test_complement_edge_count(self):
        graph = generators.path_graph(5)
        comp = complement(graph)
        assert graph.number_of_edges() + comp.number_of_edges() == 10


class TestAddClique:
    def test_add_clique_edges(self):
        graph = generators.cycle_graph(6)
        augmented, added = add_clique(graph, [0, 2, 4])
        assert len(added) == 3
        assert augmented.has_edge(0, 2)
        assert augmented.has_edge(2, 4)
        assert augmented.has_edge(0, 4)
        # Original untouched.
        assert not graph.has_edge(0, 2)

    def test_add_clique_skips_existing_edges(self):
        graph = generators.cycle_graph(6)
        augmented, added = add_clique(graph, [0, 1, 3])
        assert len(added) == 2  # (0,1) already exists
        assert augmented.number_of_edges() == graph.number_of_edges() + 2

    def test_add_clique_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            add_clique(generators.cycle_graph(4), [0, 99])

    def test_add_clique_improves_connectivity(self):
        graph = generators.cycle_graph(8)
        augmented, _ = add_clique(graph, [0, 2, 4, 6])
        assert node_connectivity(augmented) >= node_connectivity(graph)


class TestSubdivision:
    def test_subdivision(self):
        graph = generators.cycle_graph(4)
        divided = edge_subdivision(graph, 0, 1, "mid")
        assert not divided.has_edge(0, 1)
        assert divided.has_edge(0, "mid")
        assert divided.has_edge("mid", 1)
        assert divided.number_of_nodes() == 5

    def test_subdivision_missing_edge(self):
        with pytest.raises(NodeNotFoundError):
            edge_subdivision(generators.cycle_graph(4), 0, 2, "mid")

    def test_subdivision_existing_node(self):
        with pytest.raises(ValueError):
            edge_subdivision(generators.cycle_graph(4), 0, 1, 3)

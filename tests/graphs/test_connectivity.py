"""Unit tests for vertex / edge connectivity computations."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs import (
    Graph,
    connectivity_parameter,
    edge_connectivity,
    is_k_connected,
    local_edge_connectivity,
    local_node_connectivity,
    node_connectivity,
)
from repro.graphs import generators


class TestLocalNodeConnectivity:
    def test_path_graph(self):
        graph = generators.path_graph(5)
        assert local_node_connectivity(graph, 0, 4) == 1

    def test_cycle_graph(self):
        graph = generators.cycle_graph(6)
        assert local_node_connectivity(graph, 0, 3) == 2

    def test_adjacent_nodes_count_direct_edge(self):
        graph = generators.cycle_graph(6)
        assert local_node_connectivity(graph, 0, 1) == 2

    def test_complete_graph(self):
        graph = generators.complete_graph(5)
        assert local_node_connectivity(graph, 0, 4) == 4

    def test_same_node_rejected(self):
        graph = generators.path_graph(3)
        with pytest.raises(ValueError):
            local_node_connectivity(graph, 1, 1)

    def test_missing_node_rejected(self):
        graph = generators.path_graph(3)
        with pytest.raises(NodeNotFoundError):
            local_node_connectivity(graph, 0, 99)

    def test_cutoff(self):
        graph = generators.complete_graph(6)
        assert local_node_connectivity(graph, 0, 5, cutoff=2) >= 2

    def test_disconnected_pair(self):
        graph = Graph(edges=[(0, 1)], nodes=[2])
        assert local_node_connectivity(graph, 0, 2) == 0

    def test_hypercube_pair(self):
        graph = generators.hypercube_graph(3)
        assert local_node_connectivity(graph, 0, 7) == 3


class TestGlobalNodeConnectivity:
    def test_empty_and_single(self):
        assert node_connectivity(Graph()) == 0
        assert node_connectivity(Graph(nodes=[1])) == 0

    def test_disconnected(self):
        assert node_connectivity(Graph(edges=[(0, 1)], nodes=[2])) == 0

    def test_path(self):
        assert node_connectivity(generators.path_graph(6)) == 1

    def test_cycle(self):
        assert node_connectivity(generators.cycle_graph(9)) == 2

    def test_complete(self):
        assert node_connectivity(generators.complete_graph(7)) == 6

    def test_star_is_1_connected(self):
        assert node_connectivity(generators.star_graph(5)) == 1

    def test_hypercubes(self):
        for d in (2, 3, 4):
            assert node_connectivity(generators.hypercube_graph(d)) == d

    def test_petersen(self, petersen):
        assert node_connectivity(petersen) == 3

    def test_circulant(self):
        assert node_connectivity(generators.circulant_graph(10, [1, 2])) == 4

    def test_complete_bipartite(self):
        graph = generators.complete_bipartite_graph(3, 5)
        assert node_connectivity(graph) == 3

    def test_grid(self):
        assert node_connectivity(generators.grid_graph(4, 4)) == 2

    def test_torus(self):
        assert node_connectivity(generators.torus_graph(4, 4)) == 4

    def test_barbell_cut_vertex_free(self):
        # Two cliques joined by a path share a cut vertex => connectivity 1.
        graph = generators.barbell_graph(4, 2)
        assert node_connectivity(graph) == 1

    def test_wheel(self):
        assert node_connectivity(generators.wheel_graph(6)) == 3

    def test_harary(self):
        assert node_connectivity(generators.harary_graph(4, 11)) == 4
        assert node_connectivity(generators.harary_graph(3, 10)) == 3


class TestIsKConnected:
    def test_zero_is_trivial(self):
        assert is_k_connected(Graph(), 0)

    def test_cycle_thresholds(self):
        graph = generators.cycle_graph(8)
        assert is_k_connected(graph, 1)
        assert is_k_connected(graph, 2)
        assert not is_k_connected(graph, 3)

    def test_complete_graph_threshold(self):
        graph = generators.complete_graph(5)
        assert is_k_connected(graph, 4)
        assert not is_k_connected(graph, 5)

    def test_small_graph(self):
        graph = Graph(edges=[(0, 1)])
        assert is_k_connected(graph, 1)
        assert not is_k_connected(graph, 2)


class TestEdgeConnectivity:
    def test_path(self):
        assert edge_connectivity(generators.path_graph(4)) == 1

    def test_cycle(self):
        assert edge_connectivity(generators.cycle_graph(7)) == 2

    def test_complete(self):
        assert edge_connectivity(generators.complete_graph(5)) == 4

    def test_disconnected(self):
        assert edge_connectivity(Graph(edges=[(0, 1)], nodes=[2])) == 0

    def test_edge_ge_node_connectivity(self, petersen):
        assert edge_connectivity(petersen) >= node_connectivity(petersen)

    def test_local_edge_connectivity(self):
        graph = generators.cycle_graph(6)
        assert local_edge_connectivity(graph, 0, 3) == 2

    def test_local_edge_connectivity_validation(self):
        graph = generators.path_graph(3)
        with pytest.raises(ValueError):
            local_edge_connectivity(graph, 1, 1)
        with pytest.raises(NodeNotFoundError):
            local_edge_connectivity(graph, 0, 42)


class TestConnectivityParameter:
    def test_cycle_t_is_1(self):
        assert connectivity_parameter(generators.cycle_graph(10)) == 1

    def test_hypercube_t(self):
        assert connectivity_parameter(generators.hypercube_graph(4)) == 3

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            connectivity_parameter(Graph(edges=[(0, 1)], nodes=[5]))

"""Unit tests for the undirected Graph class."""

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graphs import Graph


class TestNodeOperations:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0
        assert graph.nodes() == []

    def test_add_node(self):
        graph = Graph()
        graph.add_node("a")
        assert graph.has_node("a")
        assert graph.number_of_nodes() == 1

    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(1)
        assert graph.number_of_nodes() == 1

    def test_add_nodes_from(self):
        graph = Graph()
        graph.add_nodes_from(range(5))
        assert graph.number_of_nodes() == 5

    def test_constructor_nodes_and_edges(self):
        graph = Graph(edges=[(0, 1)], nodes=[5])
        assert graph.has_node(5)
        assert graph.has_edge(0, 1)

    def test_remove_node_removes_incident_edges(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        graph.remove_node(1)
        assert not graph.has_node(1)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)
        assert graph.number_of_edges() == 1

    def test_remove_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("missing")

    def test_remove_nodes_from(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        graph.remove_nodes_from([0, 3])
        assert set(graph.nodes()) == {1, 2}

    def test_contains_and_iter(self):
        graph = Graph(nodes=[1, 2, 3])
        assert 2 in graph
        assert 9 not in graph
        assert sorted(graph) == [1, 2, 3]

    def test_len(self):
        graph = Graph(nodes=range(7))
        assert len(graph) == 7

    def test_hashable_node_types(self):
        graph = Graph()
        graph.add_edge(("a", 1), frozenset({2}))
        assert graph.has_edge(frozenset({2}), ("a", 1))


class TestEdgeOperations:
    def test_add_edge_adds_endpoints(self):
        graph = Graph()
        graph.add_edge(0, 1)
        assert graph.has_node(0)
        assert graph.has_node(1)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_add_edge_rejects_self_loop(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(3, 3)

    def test_add_edge_idempotent(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        assert graph.number_of_edges() == 1

    def test_remove_edge(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.has_node(0)

    def test_remove_missing_edge_raises(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 2)

    def test_remove_edges_from(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        graph.remove_edges_from([(0, 1), (2, 3)])
        assert graph.number_of_edges() == 1

    def test_edges_listed_once(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        edges = graph.edges()
        assert len(edges) == 3
        normalized = {frozenset(edge) for edge in edges}
        assert normalized == {frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})}

    def test_number_of_edges(self):
        graph = Graph(edges=[(i, i + 1) for i in range(9)])
        assert graph.number_of_edges() == 9


class TestNeighborhoods:
    def test_neighbors(self):
        graph = Graph(edges=[(0, 1), (0, 2), (3, 4)])
        assert graph.neighbors(0) == {1, 2}
        assert graph.neighbors(4) == {3}

    def test_neighbors_returns_copy(self):
        graph = Graph(edges=[(0, 1)])
        neighbors = graph.neighbors(0)
        neighbors.add(99)
        assert graph.neighbors(0) == {1}

    def test_neighbors_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.neighbors("nope")

    def test_degree(self):
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1

    def test_degrees_mapping(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert graph.degrees() == {0: 1, 1: 2, 2: 1}

    def test_max_min_average_degree(self):
        graph = Graph(edges=[(0, 1), (1, 2), (1, 3)])
        assert graph.max_degree() == 3
        assert graph.min_degree() == 1
        assert graph.average_degree() == pytest.approx(2 * 3 / 4)

    def test_degree_stats_empty_graph(self):
        graph = Graph()
        assert graph.max_degree() == 0
        assert graph.min_degree() == 0
        assert graph.average_degree() == 0.0

    def test_closed_neighborhood(self):
        graph = Graph(edges=[(0, 1), (0, 2)])
        assert graph.closed_neighborhood(0) == {0, 1, 2}

    def test_neighborhood_at_distance_radius1(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert graph.neighborhood_at_distance(0, 1) == {1}

    def test_neighborhood_at_distance_radius2(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert graph.neighborhood_at_distance(0, 2) == {1, 2}

    def test_neighborhood_at_distance_radius0(self):
        graph = Graph(edges=[(0, 1)])
        assert graph.neighborhood_at_distance(0, 0) == set()

    def test_neighborhood_at_distance_negative_radius(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(ValueError):
            graph.neighborhood_at_distance(0, -1)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = Graph(edges=[(0, 1)], name="orig")
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert not graph.has_node(2)
        assert clone.name == "orig"

    def test_copy_equality(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert graph.copy() == graph

    def test_subgraph_induced(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = graph.subgraph([0, 1, 2])
        assert set(sub.nodes()) == {0, 1, 2}
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)

    def test_subgraph_ignores_missing_nodes(self):
        graph = Graph(edges=[(0, 1)])
        sub = graph.subgraph([0, 1, 99])
        assert set(sub.nodes()) == {0, 1}

    def test_without_nodes(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        reduced = graph.without_nodes([1])
        assert set(reduced.nodes()) == {0, 2, 3}
        assert reduced.has_edge(2, 3)
        assert not reduced.has_edge(1, 2)

    def test_without_nodes_leaves_original(self):
        graph = Graph(edges=[(0, 1)])
        graph.without_nodes([0])
        assert graph.has_node(0)


class TestEqualityAndRepr:
    def test_equality_same_structure(self):
        first = Graph(edges=[(0, 1), (1, 2)])
        second = Graph(edges=[(1, 2), (0, 1)])
        assert first == second

    def test_inequality_different_edges(self):
        first = Graph(edges=[(0, 1)])
        second = Graph(edges=[(0, 2)])
        assert first != second

    def test_inequality_different_nodes(self):
        first = Graph(nodes=[0, 1])
        second = Graph(nodes=[0, 1, 2])
        assert first != second

    def test_equality_with_non_graph(self):
        assert Graph() != 42

    def test_repr_contains_counts(self):
        graph = Graph(edges=[(0, 1)], name="tiny")
        text = repr(graph)
        assert "tiny" in text
        assert "|V|=2" in text
        assert "|E|=1" in text

    def test_adjacency_copy(self):
        graph = Graph(edges=[(0, 1)])
        adjacency = graph.adjacency()
        adjacency[0].add(9)
        assert graph.neighbors(0) == {1}

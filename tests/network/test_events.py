"""Unit tests for the slotted integer-tick discrete-event queue."""

import pytest

from repro.exceptions import SimulationError
from repro.network import EventQueue


class TestScheduling:
    def test_schedule_and_step(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10, lambda: fired.append("a"))
        queue.schedule(5, lambda: fired.append("b"))
        assert len(queue) == 2
        assert queue.step()
        assert fired == ["b"]
        assert queue.now == 5

    def test_fifo_for_equal_ticks(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.schedule(1, lambda label=label: fired.append(label))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1, lambda: None)

    def test_float_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(0.5, lambda: None)

    def test_bool_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(True, lambda: None)

    def test_step_empty_queue(self):
        assert not EventQueue().step()

    def test_processed_counter(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        queue.run()
        assert queue.processed == 2

    def test_zero_delay_fires_at_current_tick(self):
        queue = EventQueue()
        ticks = []
        queue.schedule(0, lambda: ticks.append(queue.now))
        queue.run()
        assert ticks == [0]


class TestRun:
    def test_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1, lambda: fired.append(1))
        queue.schedule(2, lambda: fired.append(2))
        queue.schedule(3, lambda: fired.append(3))
        processed = queue.run(until=2)
        assert processed == 2
        assert fired == [1, 2]
        assert len(queue) == 1

    def test_run_until_boundary_is_inclusive_across_ties(self):
        # Every event scheduled exactly at the boundary tick fires, in
        # scheduling order, regardless of how many tie on it.
        queue = EventQueue()
        fired = []
        queue.schedule(3, lambda: fired.append("late"))
        for label in "abc":
            queue.schedule(2, lambda label=label: fired.append(label))
        assert queue.run(until=2) == 3
        assert fired == ["a", "b", "c"]
        assert queue.now == 2
        assert len(queue) == 1

    def test_run_until_parks_then_resumes(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda: fired.append("five"))
        assert queue.run(until=4) == 0
        # The parked batch must still fire once the horizon allows it...
        assert queue.run(until=5) == 1
        assert fired == ["five"]

    def test_earlier_event_scheduled_while_parked_fires_first(self):
        # run(until=) can leave the next batch parked out of the heap; an
        # event scheduled later but for an earlier tick must still win.
        queue = EventQueue()
        fired = []
        queue.schedule(10, lambda: fired.append("ten"))
        queue.run(until=5)  # parks the tick-10 batch
        queue.schedule(3, lambda: fired.append("three"))
        queue.run()
        assert fired == ["three", "ten"]

    def test_run_max_events(self):
        queue = EventQueue()
        for _ in range(5):
            queue.schedule(1, lambda: None)
        assert queue.run(max_events=3) == 3
        assert len(queue) == 2

    def test_max_events_skips_cancelled_heads_without_counting(self):
        # Cancelled events at the head of the queue are skipped silently:
        # they neither fire nor consume max_events budget.
        queue = EventQueue()
        fired = []
        cancelled = [queue.schedule(1, lambda: fired.append("dead")) for _ in range(3)]
        for label in "ab":
            queue.schedule(2, lambda label=label: fired.append(label))
        for event in cancelled:
            queue.cancel(event)
        assert queue.run(max_events=2) == 2
        assert fired == ["a", "b"]
        assert len(queue) == 0

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        fired = []

        def cascade():
            fired.append("first")
            queue.schedule(1, lambda: fired.append("second"))

        queue.schedule(1, cascade)
        queue.run()
        assert fired == ["first", "second"]
        assert queue.now == 2

    def test_zero_delay_cascade_joins_current_tick_batch(self):
        # A zero-delay event scheduled from inside a callback fires within
        # the same tick, after the already-scheduled events of that tick.
        queue = EventQueue()
        fired = []

        def cascade():
            fired.append("cascade")
            queue.schedule(0, lambda: fired.append("chained"))

        queue.schedule(2, cascade)
        queue.schedule(2, lambda: fired.append("sibling"))
        queue.run()
        assert fired == ["cascade", "sibling", "chained"]
        assert queue.now == 2

    def test_time_advances_monotonically(self):
        queue = EventQueue()
        ticks = []
        queue.schedule(3, lambda: ticks.append(queue.now))
        queue.schedule(1, lambda: ticks.append(queue.now))
        queue.schedule(2, lambda: ticks.append(queue.now))
        queue.run()
        assert ticks == sorted(ticks)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1, lambda: fired.append("x"))
        queue.cancel(event)
        queue.run()
        assert fired == []
        assert len(queue) == 0

    def test_cancel_after_fire_is_noop(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1, lambda: fired.append("live"))
        event = queue.schedule(1, lambda: None)
        queue.run()
        assert len(queue) == 0
        # Cancelling a fired event must not resurrect nor double-count:
        # the live counter stays exactly where the run left it.
        queue.cancel(event)
        assert len(queue) == 0
        queue.schedule(1, lambda: fired.append("after"))
        assert len(queue) == 1
        queue.run()
        assert fired == ["live", "after"]

    def test_double_cancel_decrements_once(self):
        queue = EventQueue()
        event = queue.schedule(1, lambda: None)
        queue.schedule(1, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1
        assert queue.run() == 1

    def test_len_is_live_counter(self):
        # __len__ must track schedule/cancel/fire exactly (it is O(1), not
        # a heap scan — this pins the bookkeeping, not the complexity).
        queue = EventQueue()
        events = [queue.schedule(i, lambda: None) for i in range(10)]
        assert len(queue) == 10
        for event in events[::2]:
            queue.cancel(event)
        assert len(queue) == 5
        queue.run(max_events=2)
        assert len(queue) == 3
        queue.run()
        assert len(queue) == 0
        assert queue.processed == 5

    def test_cancel_mid_batch(self):
        # Cancelling a later event of the tick batch currently dispatching
        # must suppress it even though its slot already left the heap.
        queue = EventQueue()
        fired = []
        events = {}

        def killer():
            fired.append("killer")
            queue.cancel(events["victim"])

        queue.schedule(1, killer)
        events["victim"] = queue.schedule(1, lambda: fired.append("victim"))
        queue.schedule(1, lambda: fired.append("survivor"))
        queue.run()
        assert fired == ["killer", "survivor"]

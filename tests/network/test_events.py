"""Unit tests for the discrete-event queue."""

import pytest

from repro.exceptions import SimulationError
from repro.network import EventQueue


class TestScheduling:
    def test_schedule_and_step(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(0.5, lambda: fired.append("b"))
        assert len(queue) == 2
        assert queue.step()
        assert fired == ["b"]
        assert queue.now == 0.5

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.schedule(1.0, lambda label=label: fired.append(label))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-0.1, lambda: None)

    def test_step_empty_queue(self):
        assert not EventQueue().step()

    def test_processed_counter(self):
        queue = EventQueue()
        queue.schedule(0.1, lambda: None)
        queue.schedule(0.2, lambda: None)
        queue.run()
        assert queue.processed == 2


class TestRun:
    def test_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(2.0, lambda: fired.append(2))
        queue.schedule(3.0, lambda: fired.append(3))
        processed = queue.run(until=2.0)
        assert processed == 2
        assert fired == [1, 2]
        assert len(queue) == 1

    def test_run_max_events(self):
        queue = EventQueue()
        for _ in range(5):
            queue.schedule(1.0, lambda: None)
        assert queue.run(max_events=3) == 3
        assert len(queue) == 2

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        fired = []

        def cascade():
            fired.append("first")
            queue.schedule(1.0, lambda: fired.append("second"))

        queue.schedule(1.0, cascade)
        queue.run()
        assert fired == ["first", "second"]
        assert queue.now == 2.0

    def test_time_advances_monotonically(self):
        queue = EventQueue()
        times = []
        queue.schedule(3.0, lambda: times.append(queue.now))
        queue.schedule(1.0, lambda: times.append(queue.now))
        queue.schedule(2.0, lambda: times.append(queue.now))
        queue.run()
        assert times == sorted(times)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda: fired.append("x"))
        queue.cancel(event)
        queue.run()
        assert fired == []
        assert len(queue) == 0

    def test_cancel_after_fire_is_noop(self):
        queue = EventQueue()
        event = queue.schedule(0.5, lambda: None)
        queue.run()
        queue.cancel(event)  # must not raise

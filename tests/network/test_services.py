"""Unit tests for endpoint services (encryption, checksums, stacking)."""

import pytest

from repro.network import (
    ChecksumService,
    EndpointService,
    NullService,
    StackedService,
    XorEncryptionService,
)


class TestNullAndBase:
    def test_base_service_is_passthrough(self):
        service = EndpointService()
        assert service.on_send("payload", 0, 1) == "payload"
        assert service.on_receive("payload", 0, 1) == "payload"
        assert service.cost == 1.0

    def test_null_service_zero_cost(self):
        service = NullService()
        assert service.cost == 0.0
        assert service.on_send({"a": 1}, 0, 1) == {"a": 1}


class TestXorEncryption:
    def test_round_trip_string(self):
        service = XorEncryptionService()
        wire = service.on_send("secret message", "a", "b")
        assert wire != "secret message"
        assert "ciphertext" in wire
        assert service.on_receive(wire, "a", "b") == "secret message"

    def test_round_trip_bytes(self):
        service = XorEncryptionService(key=b"k")
        wire = service.on_send(b"\x00\x01\x02", "a", "b")
        assert service.on_receive(wire, "a", "b") == b"\x00\x01\x02"

    def test_ciphertext_differs_from_plaintext(self):
        service = XorEncryptionService()
        wire = service.on_send("hello", "a", "b")
        assert wire["ciphertext"] != b"hello"

    def test_unencrypted_payload_passthrough(self):
        service = XorEncryptionService()
        assert service.on_receive("plain", "a", "b") == "plain"

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            XorEncryptionService(key=b"")

    def test_cost_positive(self):
        assert XorEncryptionService().cost > 0


class TestChecksum:
    def test_round_trip(self):
        service = ChecksumService()
        wire = service.on_send("important", "a", "b")
        assert wire["checksum"]
        assert service.on_receive(wire, "a", "b") == "important"

    def test_corruption_detected(self):
        service = ChecksumService()
        wire = service.on_send("important", "a", "b")
        wire["data"] = "tampered"
        with pytest.raises(ValueError):
            service.on_receive(wire, "a", "b")

    def test_bytes_payload(self):
        service = ChecksumService()
        wire = service.on_send(b"\x01\x02", "a", "b")
        assert service.on_receive(wire, "a", "b") == b"\x01\x02"

    def test_passthrough_for_untagged(self):
        assert ChecksumService().on_receive(123, "a", "b") == 123


class TestStackedService:
    def test_round_trip_through_stack(self):
        # Encrypt first, then checksum the ciphertext envelope (the usual
        # encrypt-then-MAC layering); receive reverses the order.
        service = StackedService(XorEncryptionService(), ChecksumService())
        wire = service.on_send("layered", "a", "b")
        assert service.on_receive(wire, "a", "b") == "layered"

    def test_cost_is_sum(self):
        checksum = ChecksumService()
        xor = XorEncryptionService()
        assert StackedService(checksum, xor).cost == checksum.cost + xor.cost

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            StackedService()

"""Unit tests for endpoint services (encryption, checksums, stacking)."""

import pytest

from repro.core import build_routing
from repro.graphs import generators
from repro.network import (
    ChecksumService,
    EndpointService,
    NetworkSimulator,
    NullService,
    StackedService,
    XorEncryptionService,
)


class TestNullAndBase:
    def test_base_service_is_passthrough(self):
        service = EndpointService()
        assert service.on_send("payload", 0, 1) == "payload"
        assert service.on_receive("payload", 0, 1) == "payload"
        assert service.cost == 1.0

    def test_null_service_zero_cost(self):
        service = NullService()
        assert service.cost == 0.0
        assert service.on_send({"a": 1}, 0, 1) == {"a": 1}


class TestXorEncryption:
    def test_round_trip_string(self):
        service = XorEncryptionService()
        wire = service.on_send("secret message", "a", "b")
        assert wire != "secret message"
        assert "ciphertext" in wire
        assert service.on_receive(wire, "a", "b") == "secret message"

    def test_round_trip_bytes(self):
        service = XorEncryptionService(key=b"k")
        wire = service.on_send(b"\x00\x01\x02", "a", "b")
        assert service.on_receive(wire, "a", "b") == b"\x00\x01\x02"

    def test_ciphertext_differs_from_plaintext(self):
        service = XorEncryptionService()
        wire = service.on_send("hello", "a", "b")
        assert wire["ciphertext"] != b"hello"

    def test_unencrypted_payload_passthrough(self):
        service = XorEncryptionService()
        assert service.on_receive("plain", "a", "b") == "plain"

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            XorEncryptionService(key=b"")

    def test_cost_positive(self):
        assert XorEncryptionService().cost > 0


class TestChecksum:
    def test_round_trip(self):
        service = ChecksumService()
        wire = service.on_send("important", "a", "b")
        assert wire["checksum"]
        assert service.on_receive(wire, "a", "b") == "important"

    def test_corruption_detected(self):
        service = ChecksumService()
        wire = service.on_send("important", "a", "b")
        wire["data"] = "tampered"
        with pytest.raises(ValueError):
            service.on_receive(wire, "a", "b")

    def test_bytes_payload(self):
        service = ChecksumService()
        wire = service.on_send(b"\x01\x02", "a", "b")
        assert service.on_receive(wire, "a", "b") == b"\x01\x02"

    def test_passthrough_for_untagged(self):
        assert ChecksumService().on_receive(123, "a", "b") == 123


class TestStackedService:
    def test_round_trip_through_stack(self):
        # Encrypt first, then checksum the ciphertext envelope (the usual
        # encrypt-then-MAC layering); receive reverses the order.
        service = StackedService(XorEncryptionService(), ChecksumService())
        wire = service.on_send("layered", "a", "b")
        assert service.on_receive(wire, "a", "b") == "layered"

    def test_cost_is_sum(self):
        checksum = ChecksumService()
        xor = XorEncryptionService()
        assert StackedService(checksum, xor).cost == checksum.cost + xor.cost

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            StackedService()


@pytest.fixture(scope="module")
def simulated_network():
    graph = generators.circulant_graph(10, [1, 2])
    result = build_routing(graph, strategy="kernel")
    return graph, result.routing


class TestServicesThroughTheSimulator:
    """End-to-end: payloads survive real deliveries through each service."""

    @pytest.mark.parametrize(
        "service",
        [
            NullService(),
            XorEncryptionService(),
            ChecksumService(),
            StackedService(XorEncryptionService(), ChecksumService()),
        ],
        ids=["null", "xor", "checksum", "stacked"],
    )
    def test_send_receive_round_trip(self, simulated_network, service):
        graph, routing = simulated_network
        simulator = NetworkSimulator(graph, routing, service=service)
        nodes = graph.nodes()
        receipt = simulator.send(nodes[0], nodes[5], "confidential payload")
        assert receipt.delivered
        assert simulator.nodes[nodes[5]].application_inbox[-1] == (
            "confidential payload"
        )

    def test_round_trip_survives_faults(self, simulated_network):
        graph, routing = simulated_network
        service = StackedService(XorEncryptionService(), ChecksumService())
        simulator = NetworkSimulator(graph, routing, service=service)
        nodes = graph.nodes()
        simulator.fail_node(nodes[3])
        receipt = simulator.send(nodes[0], nodes[6], b"\x00binary\xff")
        assert receipt.delivered
        assert simulator.nodes[nodes[6]].application_inbox[-1] == b"\x00binary\xff"

    def test_service_cost_charged_per_route_segment(self, simulated_network):
        graph, routing = simulated_network
        nodes = graph.nodes()
        # Zero hop latency isolates the endpoint-processing term, which the
        # model charges per route traversal: send + receive at each segment.
        free = NetworkSimulator(
            graph, routing, service=NullService(), hop_latency=0.0
        )
        priced = NetworkSimulator(
            graph, routing, service=XorEncryptionService(), hop_latency=0.0
        )
        baseline = free.send(nodes[0], nodes[5], "x")
        receipt = priced.send(nodes[0], nodes[5], "x")
        assert receipt.routes_used == baseline.routes_used
        assert baseline.latency == pytest.approx(0.0)
        # Each segment charges a send and a receive at its endpoints, and
        # segments run strictly one after another, so the serial chain is
        # 2 * routes_used endpoint invocations long.  (The old per-hop loop
        # overlapped segment i's receive with segment i+1's send — an
        # artifact of draining the queue mid-send, fixed by the event
        # engine.)
        assert receipt.latency == pytest.approx(
            2 * receipt.routes_used * XorEncryptionService.cost
        )
        assert receipt.latency_ticks == (
            2 * receipt.routes_used * priced.service_ticks
        )

    def test_tampering_in_transit_fails_delivery(self, simulated_network):
        graph, routing = simulated_network

        class CorruptingChecksumService(ChecksumService):
            def on_receive(self, payload, source, destination):
                if isinstance(payload, dict) and "checksum" in payload:
                    payload = dict(payload, data="mangled in transit")
                return super().on_receive(payload, source, destination)

        simulator = NetworkSimulator(
            graph, routing, service=CorruptingChecksumService()
        )
        nodes = graph.nodes()
        with pytest.raises(ValueError, match="checksum mismatch"):
            simulator.send(nodes[0], nodes[4], "important")

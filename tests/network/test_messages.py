"""Unit tests for the message / delivery-receipt model."""

import pytest

from repro.network import DeliveryReceipt, Message


class TestMessage:
    def test_initial_state(self):
        message = Message(origin="a", final_destination="z", payload="data")
        assert message.current_node == "a"
        assert message.route_counter == 0
        assert message.next_node is None
        assert not message.at_segment_end

    def test_unique_ids(self):
        first = Message(origin=1, final_destination=2, payload=None)
        second = Message(origin=1, final_destination=2, payload=None)
        assert first.message_id != second.message_id

    def test_attach_route_increments_counter(self):
        message = Message(origin="a", final_destination="c", payload=None)
        message.attach_route(["a", "b", "c"])
        assert message.route_counter == 1
        assert message.source == "a"
        assert message.destination == "c"
        assert message.current_node == "a"
        message.attach_route(["c", "d"])
        assert message.route_counter == 2

    def test_advance_along_route(self):
        message = Message(origin="a", final_destination="c", payload=None)
        message.attach_route(["a", "b", "c"])
        assert message.advance() == "b"
        assert message.current_node == "b"
        assert not message.at_segment_end
        assert message.advance() == "c"
        assert message.at_segment_end
        assert message.next_node is None

    def test_advance_past_end_rejected(self):
        message = Message(origin="a", final_destination="b", payload=None)
        message.attach_route(["a", "b"])
        message.advance()
        with pytest.raises(ValueError):
            message.advance()

    def test_trace_records_visits(self):
        message = Message(origin="a", final_destination="c", payload=None)
        message.trace.append("a")
        message.attach_route(["a", "b", "c"])
        message.advance()
        message.advance()
        assert message.trace == ["a", "b", "c"]

    def test_repr(self):
        message = Message(origin="a", final_destination="b", payload=None)
        assert "a" in repr(message)


class TestDeliveryReceipt:
    def test_delivered_repr(self):
        message = Message(origin=0, final_destination=1, payload=None)
        receipt = DeliveryReceipt(message=message, delivered=True, routes_used=2, hops=5, latency=1.5)
        assert "delivered" in repr(receipt)
        assert "routes=2" in repr(receipt)

    def test_failed_repr(self):
        message = Message(origin=0, final_destination=1, payload=None)
        receipt = DeliveryReceipt(
            message=message,
            delivered=False,
            routes_used=0,
            hops=0,
            latency=0.0,
            failure_reason="unreachable",
        )
        assert "FAILED" in repr(receipt)
        assert "unreachable" in repr(receipt)

"""Property suites pinning the event engine to the legacy cost model.

Two equivalences, both over randomly sampled graphs, fault sets and
workloads:

1. **Null-model receipts match the legacy simulator.**  A reference
   implementation of the pre-refactor delivery model (BFS plan over the
   surviving route graph, one surviving path per segment, serial endpoint
   costs) predicts every receipt the event engine emits under the null
   link model — delivered flag, routes used, hop count, failure reason,
   and the exact serial latency
   ``hops * hop_ticks + 2 * segments * service_ticks``.

2. **The coalesced segment flight matches the per-hop machinery.**  With
   effectively infinite link capacity the per-hop congestion path must
   produce the very same receipts (including mid-flight deaths under
   timed fault schedules) as the null model's single-event flights — the
   fast path may not change semantics, only event counts.
"""

import re

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_routing
from repro.core.surviving import surviving_route_graph
from repro.exceptions import DeliveryError
from repro.graphs import generators
from repro.graphs.traversal import bfs_tree
from repro.network import (
    FaultEvent,
    LinkSpec,
    NetworkSimulator,
    NullService,
    Workload,
    XorEncryptionService,
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Effectively infinite capacity: forces the per-hop machinery without
#: introducing any queueing delay, so receipts must equal the null model's.
_HUGE = 10 ** 9


def _reference_receipt(graph, routing, failed, origin, destination):
    """Predict the legacy receipt fields for one delivery (static faults).

    Returns ``(delivered, routes_used, hops, failure_reason)`` exactly as
    the pre-refactor simulator would have reported them.  With a static
    fault set every chosen path avoids failed nodes, so the only failure
    modes are planning failures.
    """
    surviving = surviving_route_graph(graph, routing, failed)
    if not surviving.has_node(origin):
        return (False, 0, 0, f"origin {origin!r} is failed or unknown")
    if not surviving.has_node(destination):
        return (False, 0, 0, f"destination {destination!r} is failed or unknown")
    if origin == destination:
        return (True, 0, 0, "")
    parents = bfs_tree(surviving, origin)
    if destination not in parents:
        return (
            False,
            0,
            0,
            f"no sequence of surviving routes connects {origin!r} to {destination!r}",
        )
    chain = [destination]
    while chain[-1] != origin:
        chain.append(parents[chain[-1]])
    chain.reverse()
    failed_set = set(failed)
    hops = 0
    segments = 0
    get_routes = getattr(routing, "get_routes", None)
    for source, target in zip(chain, chain[1:]):
        if get_routes is not None:
            path = None
            for candidate in get_routes(source, target):
                if not any(node in failed_set for node in candidate):
                    path = candidate
                    break
            if path is None:
                return (
                    False,
                    segments,
                    hops,
                    f"all parallel routes {source!r}->{target!r} are faulty",
                )
        else:
            path = routing.get_route(source, target)
            if path is None or any(node in failed_set for node in path):
                return (
                    False,
                    segments,
                    hops,
                    f"route {source!r}->{target!r} is missing or faulty",
                )
        segments += 1
        hops += len(path) - 1
    return (True, segments, hops, "")


@st.composite
def network_with_faults(draw):
    """A circulant network, a kernel routing, and a static fault set."""
    n = draw(st.integers(min_value=10, max_value=20))
    graph = generators.circulant_graph(n, [1, 2])
    result = build_routing(graph, strategy="kernel")
    fault_count = draw(st.integers(min_value=0, max_value=3))
    faults = draw(
        st.lists(
            st.sampled_from(graph.nodes()),
            min_size=fault_count,
            max_size=fault_count,
            unique=True,
        )
    )
    return graph, result.routing, faults


class TestNullModelReproducesLegacyReceipts:
    @SETTINGS
    @given(data=network_with_faults(), seed=st.integers(0, 1000))
    def test_receipts_match_reference(self, data, seed):
        graph, routing, faults = data
        simulator = NetworkSimulator(graph, routing, service=XorEncryptionService())
        simulator.fail_nodes(faults)
        workload = Workload(kind="uniform", messages=25, duration=10)
        for _tick, origin, destination in workload.injections(graph.nodes(), seed):
            receipt = simulator.send(origin, destination, "payload")
            expected = _reference_receipt(graph, routing, faults, origin, destination)
            assert (
                receipt.delivered,
                receipt.routes_used,
                receipt.hops,
                receipt.failure_reason,
            ) == expected

    @SETTINGS
    @given(
        data=network_with_faults(),
        seed=st.integers(0, 1000),
        use_service=st.booleans(),
    )
    def test_serial_latency_formula(self, data, seed, use_service):
        # The satellite property: under the null link model every delivered
        # message costs exactly hops * hop_ticks + 2 * segments * service
        # ticks — segments run strictly one after another.
        graph, routing, faults = data
        service = XorEncryptionService() if use_service else NullService()
        simulator = NetworkSimulator(
            graph, routing, service=service, hop_latency=0.05
        )
        simulator.fail_nodes(faults)
        workload = Workload(kind="uniform", messages=25, duration=10)
        for _tick, origin, destination in workload.injections(graph.nodes(), seed):
            receipt = simulator.send(origin, destination, "payload")
            if not receipt.delivered:
                continue
            assert receipt.latency_ticks == (
                receipt.hops * simulator.hop_ticks
                + 2 * receipt.routes_used * simulator.service_ticks
            )
            assert receipt.latency == receipt.latency_ticks / simulator.resolution


@st.composite
def timed_fault_schedule(draw, n):
    """Up to four fail/repair actions over the first 40 ticks."""
    count = draw(st.integers(min_value=0, max_value=4))
    events = []
    for _ in range(count):
        tick = draw(st.integers(min_value=0, max_value=40))
        action = draw(st.sampled_from(["fail", "repair"]))
        node = draw(st.integers(min_value=0, max_value=n - 1))
        events.append(FaultEvent(tick, action, node))
    events.sort(key=lambda event: (event.tick, event.action, str(event.node)))
    return events


@st.composite
def traffic_case(draw):
    n = draw(st.integers(min_value=10, max_value=16))
    graph = generators.circulant_graph(n, [1, 2])
    result = build_routing(graph, strategy="kernel")
    faults = draw(timed_fault_schedule(n))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return graph, result.routing, faults, seed


def _run_indexed(graph, routing, faults, seed, link):
    """Run a workload, returning receipts keyed by injection index."""
    simulator = NetworkSimulator(graph, routing, hop_latency=0.1, link=link)
    for fault in faults:
        action = (
            simulator.fail_node if fault.action == "fail" else simulator.repair_node
        )
        simulator.events.schedule(
            fault.tick, lambda act=action, node=fault.node: act(node), kind="fault"
        )
    workload = Workload(kind="uniform", messages=30, duration=30)
    injections = workload.injections(graph.nodes(), seed)
    receipts = [None] * len(injections)
    for index, (tick, origin, destination) in enumerate(injections):
        simulator.inject(
            origin,
            destination,
            index,
            delay=tick,
            on_complete=lambda receipt, index=index: receipts.__setitem__(
                index, receipt
            ),
        )
    simulator.events.run()
    return receipts


class TestFlightPathMatchesPerHopMachinery:
    @SETTINGS
    @given(case=traffic_case())
    def test_timed_fault_receipts_identical(self, case):
        graph, routing, faults, seed = case
        coalesced = _run_indexed(graph, routing, faults, seed, link=None)
        per_hop = _run_indexed(
            graph, routing, faults, seed, link=LinkSpec(capacity=_HUGE)
        )
        assert len(coalesced) == len(per_hop)
        # The global message-id counter differs between the two runs, so
        # mask it out of the failure reasons before comparing.
        anonymise = lambda reason: re.sub(r"message \d+", "message *", reason)
        for fast, slow in zip(coalesced, per_hop):
            assert fast is not None and slow is not None
            assert (
                fast.delivered,
                fast.routes_used,
                fast.hops,
                anonymise(fast.failure_reason),
                fast.latency_ticks,
            ) == (
                slow.delivered,
                slow.routes_used,
                slow.hops,
                anonymise(slow.failure_reason),
                slow.latency_ticks,
            )

"""Tests for traffic workloads, timed faults, and traffic result records."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.core import build_routing
from repro.graphs import generators
from repro.network import (
    FaultEvent,
    LinkSpec,
    NetworkSimulator,
    TrafficResult,
    Workload,
    run_traffic,
    traffic_manifest,
)
from repro.network.traffic import percentile_nearest_rank
from repro.results.records import view_from_record


@pytest.fixture(scope="module")
def network():
    graph = generators.circulant_graph(16, [1, 2])
    result = build_routing(graph, strategy="kernel")
    return graph, result.routing


class TestWorkloadSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            Workload(kind="storm")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"messages": 0},
            {"duration": 0},
            {"hotspots": 0},
            {"hot_fraction": 1.5},
            {"rounds": 0},
            {"interval": 0},
        ],
    )
    def test_invalid_shapes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Workload(**kwargs)

    def test_canonical_strings(self):
        assert (
            Workload(kind="uniform", messages=50, duration=20).canonical()
            == "uniform:messages=50,duration=20"
        )
        assert (
            Workload(kind="hotspot", messages=50, duration=20,
                     hotspots=2, hot_fraction=0.75).canonical()
            == "hotspot:messages=50,duration=20,hotspots=2,hot_fraction=0.75"
        )
        assert (
            Workload(kind="gossip", rounds=3, interval=5).canonical()
            == "gossip:rounds=3,interval=5"
        )


class TestWorkloadGenerators:
    def test_uniform_shape(self):
        nodes = list(range(10))
        workload = Workload(kind="uniform", messages=40, duration=25)
        injections = workload.injections(nodes, seed=3)
        assert len(injections) == 40
        for tick, origin, destination in injections:
            assert 0 <= tick < 25
            assert origin in nodes and destination in nodes
            assert origin != destination

    def test_hotspot_concentrates_destinations(self):
        nodes = list(range(20))
        workload = Workload(
            kind="hotspot", messages=300, duration=50, hotspots=2, hot_fraction=0.9
        )
        injections = workload.injections(nodes, seed=1)
        counts = {}
        for _tick, _origin, destination in injections:
            counts[destination] = counts.get(destination, 0) + 1
        top_two = sum(sorted(counts.values())[-2:])
        assert top_two >= 0.7 * len(injections)

    def test_gossip_round_structure(self):
        nodes = list(range(8))
        workload = Workload(kind="gossip", rounds=3, interval=10)
        injections = workload.injections(nodes, seed=0)
        assert len(injections) == 3 * len(nodes)
        for round_index in range(3):
            round_slice = injections[
                round_index * len(nodes):(round_index + 1) * len(nodes)
            ]
            assert all(t == round_index * 10 for t, _o, _d in round_slice)
            # Every node speaks exactly once per round, never to itself.
            assert [o for _t, o, _d in round_slice] == nodes
            assert all(o != d for _t, o, d in round_slice)

    def test_same_seed_same_injections(self):
        nodes = list(range(12))
        workload = Workload(kind="hotspot", messages=60, duration=30)
        assert workload.injections(nodes, 5) == workload.injections(nodes, 5)
        assert workload.injections(nodes, 5) != workload.injections(nodes, 6)

    def test_two_nodes_minimum(self):
        with pytest.raises(ValueError, match="at least two nodes"):
            Workload().injections([1], seed=0)


class TestFaultEvents:
    def test_validation(self):
        with pytest.raises(ValueError, match="in the past"):
            FaultEvent(tick=-1, action="fail", node=0)
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(tick=0, action="explode", node=0)

    def test_canonical(self):
        assert FaultEvent(10, "fail", 3).canonical() == "fail@10:3"

    def test_unknown_node_in_schedule_rejected(self, network):
        graph, routing = network
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="unknown nodes"):
            run_traffic(
                graph, routing, Workload(messages=5, duration=5),
                faults=[FaultEvent(0, "fail", "nope")],
            )

    def test_mid_run_failure_kills_in_flight_messages(self, network):
        graph, routing = network
        nodes = graph.nodes()
        workload = Workload(kind="uniform", messages=80, duration=60)
        clean = run_traffic(graph, routing, workload, seed=4)
        assert clean.delivered == clean.injected
        # Fail a node a third of the way in and never repair it: traffic
        # planned through (or addressed to) it must start failing.
        faulty = run_traffic(
            graph, routing, workload, seed=4,
            faults=[FaultEvent(20, "fail", nodes[3])],
        )
        assert faulty.injected == clean.injected
        assert faulty.delivered < clean.delivered
        assert faulty.drop_rate > 0
        reasons = [
            r.failure_reason for r in faulty.receipts if not r.delivered
        ]
        assert reasons
        assert all(str(nodes[3]) in reason for reason in reasons)

    def test_repair_restores_delivery(self, network):
        graph, routing = network
        nodes = graph.nodes()
        workload = Workload(kind="uniform", messages=80, duration=60)
        dead = run_traffic(
            graph, routing, workload, seed=4,
            faults=[FaultEvent(0, "fail", nodes[3])],
        )
        healed = run_traffic(
            graph, routing, workload, seed=4,
            faults=[FaultEvent(0, "fail", nodes[3]),
                    FaultEvent(10, "repair", nodes[3])],
        )
        assert healed.delivered > dead.delivered

    def test_fault_applies_before_same_tick_traffic(self, network):
        graph, routing = network
        nodes = graph.nodes()
        # All injections land on tick 0, the very tick the origin fails:
        # fault events are scheduled ahead of the workload, so its messages
        # must already see a failed origin.
        workload = Workload(kind="uniform", messages=30, duration=1)
        injections = workload.injections(list(nodes), seed=2)
        origin = injections[0][1]
        result = run_traffic(
            graph, routing, workload, seed=2,
            faults=[FaultEvent(0, "fail", origin)],
        )
        reasons = [
            r.failure_reason for r in result.receipts if not r.delivered
        ]
        assert any(
            f"origin {origin!r} is failed" in reason for reason in reasons
        )


class TestTrafficMetrics:
    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile_nearest_rank(values, 0.99) == 99
        assert percentile_nearest_rank(values, 0.5) == 50
        assert percentile_nearest_rank([7], 0.99) == 7
        with pytest.raises(ValueError):
            percentile_nearest_rank([], 0.5)

    def test_lossless_run_statistics(self, network):
        graph, routing = network
        workload = Workload(kind="uniform", messages=50, duration=40)
        result = run_traffic(graph, routing, workload, seed=9)
        assert result.injected == 50
        assert result.delivered == 50
        assert result.dropped == 0
        assert result.drop_rate == 0.0
        assert result.max_queue_depth == 0
        assert result.throughput > 0
        assert result.mean_latency is not None
        assert result.mean_latency <= result.p99_latency

    def test_congestion_shows_in_the_metrics(self, network):
        graph, routing = network
        workload = Workload(kind="hotspot", messages=150, duration=30,
                            hotspots=1, hot_fraction=1.0)
        free = run_traffic(graph, routing, workload, seed=2)
        tight = run_traffic(
            graph, routing, workload, seed=2, link=LinkSpec(capacity=1, buffer=4)
        )
        assert tight.max_queue_depth > 0
        assert tight.dropped > 0
        assert tight.drop_rate > free.drop_rate
        assert all(
            "buffer full" in r.failure_reason
            for r in tight.receipts if not r.delivered
        )

    def test_record_round_trips_through_view_from_record(self, network):
        graph, routing = network
        result = run_traffic(
            graph, routing, Workload(messages=20, duration=10), seed=1,
            scenario="circulant:n=16,offsets=1+2/kernel",
            family="circulant", strategy="kernel", t=2,
        )
        record = result.record()
        assert record["kind"] == "traffic"
        view = view_from_record(record)
        assert isinstance(view, TrafficResult)
        # The receipts are a run-time extra, never persisted.
        assert view.receipts is None
        assert view == dataclasses_replace_without_receipts(result)

    def test_manifest_covers_all_determinism_inputs(self):
        manifest = traffic_manifest(
            ["spec/kernel"], Workload(messages=10, duration=5), seed=3,
            hop_latency=0.1, resolution=100,
            link=LinkSpec(capacity=2), service="xor",
            faults=[FaultEvent(5, "fail", 1), "repair@9:1"],
        )
        assert manifest["experiment"] == "traffic"
        assert manifest["workload"] == "uniform:messages=10,duration=5"
        assert manifest["link"] == "capacity=2"
        assert manifest["faults"] == ["fail@5:1", "repair@9:1"]


def dataclasses_replace_without_receipts(result):
    import dataclasses

    return dataclasses.replace(result, receipts=None)


class TestDeterminism:
    def test_two_fresh_runs_identical_records(self, network):
        graph, routing = network
        workload = Workload(kind="hotspot", messages=60, duration=30)
        faults = [FaultEvent(8, "fail", graph.nodes()[5]),
                  FaultEvent(20, "repair", graph.nodes()[5])]
        records = []
        for _ in range(2):
            g = generators.circulant_graph(16, [1, 2])
            r = build_routing(g, strategy="kernel")
            records.append(
                json.dumps(
                    run_traffic(g, r.routing, workload, seed=11,
                                faults=faults).record(),
                    sort_keys=True,
                )
            )
        assert records[0] == records[1]

    def test_byte_identical_across_hash_seeds(self, tmp_path):
        # Same seed, different PYTHONHASHSEED -> byte-identical records
        # (workload RNGs are string-seeded; node order is insertion order).
        script = textwrap.dedent(
            """
            import json, sys
            from repro.core import build_routing
            from repro.graphs import generators
            from repro.network import FaultEvent, LinkSpec, Workload, run_traffic

            graph = generators.circulant_graph(16, [1, 2])
            result = build_routing(graph, strategy="kernel")
            traffic = run_traffic(
                graph,
                result.routing,
                Workload(kind="hotspot", messages=60, duration=30),
                seed=11,
                link=LinkSpec(capacity=2, buffer=8),
                faults=[FaultEvent(8, "fail", graph.nodes()[5])],
            )
            sys.stdout.write(json.dumps(traffic.record(), sort_keys=True))
            """
        )
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src_dir)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]

"""Unit tests for the link/flow layer (capacity, buffers, queueing, drops)."""

import pytest

from repro.core import build_routing
from repro.graphs import generators
from repro.network import Link, LinkSpec, NetworkSimulator


class TestLinkSpec:
    def test_defaults_are_the_null_model(self):
        spec = LinkSpec()
        assert spec.latency is None
        assert spec.capacity is None
        assert spec.buffer is None
        assert spec.describe() == "null"

    def test_describe_lists_set_fields(self):
        assert LinkSpec(capacity=2).describe() == "capacity=2"
        assert (
            LinkSpec(latency=5, capacity=2, buffer=16).describe()
            == "capacity=2,buffer=16,latency=5"
        )

    def test_buffer_without_capacity_rejected(self):
        with pytest.raises(ValueError, match="needs a capacity"):
            LinkSpec(buffer=4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency": -1},
            {"latency": 0.5},
            {"capacity": 0},
            {"capacity": -2},
            {"capacity": 1.5},
            {"capacity": 1, "buffer": -1},
            {"capacity": 1, "buffer": 2.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LinkSpec(**kwargs)

    def test_zero_buffer_is_legal(self):
        # A zero buffer drops everything that cannot depart instantly —
        # extreme, but a valid corner of the model.
        spec = LinkSpec(capacity=1, buffer=0)
        assert spec.buffer == 0


class TestLinkReservation:
    def test_null_capacity_departs_instantly(self):
        link = Link("a", "b", latency=3)
        assert link.reserve(now=7) == 7
        assert link.reserve(now=7) == 7
        assert link.stats.entered == 2
        assert link.stats.max_queue_depth == 0

    def test_capacity_serialises_departures(self):
        # capacity=2: two messages depart per tick, later arrivals queue.
        link = Link("a", "b", latency=1, capacity=2)
        assert [link.reserve(0) for _ in range(5)] == [0, 0, 1, 1, 2]
        assert link.stats.queue_wait_ticks == (1 - 0) + (1 - 0) + (2 - 0)

    def test_slot_cursor_follows_time_forward(self):
        link = Link("a", "b", latency=1, capacity=1)
        assert link.reserve(0) == 0
        assert link.reserve(0) == 1
        # Time moved past the backlog: a fresh arrival gets a fresh slot.
        assert link.reserve(5) == 5

    def test_bounded_buffer_drops_when_full(self):
        # The bound counts everything not yet departed, including the
        # message holding this tick's transmission slot.
        link = Link("a", "b", latency=1, capacity=1, buffer=2)
        assert link.reserve(0) == 0
        assert link.reserve(0) == 1
        assert link.reserve(0) is None
        assert link.stats.dropped == 1
        assert link.stats.entered == 2

    def test_queue_drains_as_time_passes(self):
        link = Link("a", "b", latency=1, capacity=1, buffer=1)
        assert link.reserve(0) == 0
        assert link.reserve(0) is None
        # By tick 2 the earlier departure has left the queue entirely.
        assert link.queue_depth(2) == 0
        assert link.reserve(2) == 2

    def test_max_queue_depth_high_water_mark(self):
        link = Link("a", "b", latency=1, capacity=1)
        for _ in range(4):
            link.reserve(0)
        assert link.stats.max_queue_depth == 4
        link.queue_depth(100)
        # Draining the queue must not lower the high-water mark.
        assert link.stats.max_queue_depth == 4


class TestLinksThroughTheSimulator:
    @pytest.fixture(scope="class")
    def network(self):
        graph = generators.circulant_graph(12, [1, 2])
        result = build_routing(graph, strategy="kernel")
        return graph, result.routing

    def test_congestion_adds_queueing_delay(self, network):
        graph, routing = network
        nodes = graph.nodes()
        free = NetworkSimulator(graph, routing, hop_latency=0.1)
        tight = NetworkSimulator(
            graph, routing, hop_latency=0.1, link=LinkSpec(capacity=1)
        )
        for simulator in (free, tight):
            for _ in range(6):
                simulator.inject(nodes[0], nodes[6], "x")
        free.events.run()
        tight.events.run()
        assert tight.stats.messages_delivered == 6
        # Serialising the shared first link must cost strictly more ticks.
        assert (
            tight.stats.total_latency_ticks > free.stats.total_latency_ticks
        )
        assert tight.max_queue_depth() > 0

    def test_full_buffers_surface_as_failed_deliveries(self, network):
        graph, routing = network
        nodes = graph.nodes()
        simulator = NetworkSimulator(
            graph, routing, hop_latency=0.1, link=LinkSpec(capacity=1, buffer=0)
        )
        receipts = []
        for _ in range(8):
            simulator.inject(
                nodes[0], nodes[6], "x", on_complete=receipts.append
            )
        simulator.events.run()
        dropped = [r for r in receipts if not r.delivered]
        assert dropped
        assert all("buffer full" in r.failure_reason for r in dropped)
        assert simulator.dropped_at_links() == len(dropped)

    def test_link_latency_overrides_hop_ticks(self, network):
        graph, routing = network
        nodes = graph.nodes()
        slow = NetworkSimulator(
            graph, routing, hop_latency=0.1, link=LinkSpec(latency=50, capacity=1)
        )
        receipt = slow.send(nodes[0], nodes[2], "x")
        assert receipt.delivered
        assert receipt.latency_ticks == receipt.hops * 50

"""Unit tests for the route-counter broadcast protocol (Section 1)."""

import pytest

from repro.core import circular_routing, kernel_routing, surviving_diameter
from repro.exceptions import SimulationError
from repro.graphs import generators
from repro.network import broadcast_rounds_from_all, route_counter_broadcast


@pytest.fixture(scope="module")
def cycle_setup():
    graph = generators.cycle_graph(12)
    return graph, circular_routing(graph)


class TestRouteCounterBroadcast:
    def test_fault_free_full_coverage(self, cycle_setup):
        graph, result = cycle_setup
        outcome = route_counter_broadcast(graph, result.routing, 0)
        assert outcome.coverage() == 1.0
        assert outcome.reached == set(graph.nodes())
        assert outcome.rounds_used <= surviving_diameter(graph, result.routing, ())

    def test_rounds_bounded_by_surviving_diameter(self, cycle_setup):
        graph, result = cycle_setup
        faults = {3}
        diam = surviving_diameter(graph, result.routing, faults)
        outcome = route_counter_broadcast(graph, result.routing, 0, faults=faults)
        assert outcome.coverage() == 1.0
        assert outcome.rounds_used <= diam

    def test_counter_limit_at_diameter_still_covers(self, cycle_setup):
        graph, result = cycle_setup
        faults = {5}
        diam = int(surviving_diameter(graph, result.routing, faults))
        outcome = route_counter_broadcast(
            graph, result.routing, 0, faults=faults, counter_limit=diam
        )
        assert outcome.coverage() == 1.0

    def test_counter_limit_too_small_truncates(self, cycle_setup):
        graph, result = cycle_setup
        outcome = route_counter_broadcast(graph, result.routing, 0, counter_limit=1)
        # With a limit of one round only direct route targets are reached.
        assert outcome.rounds_used <= 1
        assert outcome.coverage() < 1.0 or outcome.rounds_used == 1

    def test_faulty_origin_rejected(self, cycle_setup):
        graph, result = cycle_setup
        with pytest.raises(SimulationError):
            route_counter_broadcast(graph, result.routing, 0, faults={0})

    def test_unknown_origin_rejected(self, cycle_setup):
        graph, result = cycle_setup
        with pytest.raises(SimulationError):
            route_counter_broadcast(graph, result.routing, "ghost")

    def test_messages_counted(self, cycle_setup):
        graph, result = cycle_setup
        outcome = route_counter_broadcast(graph, result.routing, 0)
        assert outcome.messages_sent > 0
        assert outcome.discarded == 0

    def test_repr(self, cycle_setup):
        graph, result = cycle_setup
        outcome = route_counter_broadcast(graph, result.routing, 0)
        assert "rounds" in repr(outcome)


class TestBroadcastFromAll:
    def test_max_rounds_bounded_by_diameter(self, cycle_setup):
        graph, result = cycle_setup
        faults = {7}
        diam = surviving_diameter(graph, result.routing, faults)
        rounds = broadcast_rounds_from_all(graph, result.routing, faults=faults)
        assert set(rounds) == set(graph.nodes()) - faults
        assert max(rounds.values()) <= diam

    def test_kernel_routing_broadcast(self):
        graph = generators.circulant_graph(10, [1, 2])
        result = kernel_routing(graph)
        faults = {result.concentrator[0]}
        diam = surviving_diameter(graph, result.routing, faults)
        rounds = broadcast_rounds_from_all(graph, result.routing, faults=faults)
        assert max(rounds.values()) <= diam

    def test_indexed_recomputation_matches_naive(self, cycle_setup):
        """Route recomputation through a RouteIndex is observably identical."""
        from repro.core import RouteIndex

        graph, result = cycle_setup
        index = RouteIndex(graph, result.routing)
        faults = {3, 7}
        naive = route_counter_broadcast(graph, result.routing, 0, faults=faults)
        fast = route_counter_broadcast(
            graph, result.routing, 0, faults=faults, index=index
        )
        assert fast.reached == naive.reached
        assert fast.rounds_used == naive.rounds_used
        assert fast.messages_sent == naive.messages_sent
        assert broadcast_rounds_from_all(
            graph, result.routing, faults=faults, index=index
        ) == broadcast_rounds_from_all(graph, result.routing, faults=faults)


class TestCounterLimitSuffices:
    """The counter limit is a diameter bound — decided, not computed."""

    def test_agrees_with_exact_diameter(self, cycle_setup):
        from repro.network import counter_limit_suffices

        graph, result = cycle_setup
        for faults in ({}, {3}, {3, 7}):
            diam = surviving_diameter(graph, result.routing, faults)
            for limit in (1, 2, 4, 6, 10):
                assert counter_limit_suffices(
                    graph, result.routing, limit, faults=faults
                ) == (diam <= limit)

    def test_sufficient_limit_completes_broadcast(self, cycle_setup):
        """When the decision says yes, the protocol really reaches everyone."""
        from repro.network import counter_limit_suffices

        graph, result = cycle_setup
        faults = {3}
        limit = result.guarantee.diameter_bound
        assert counter_limit_suffices(graph, result.routing, limit, faults=faults)
        outcome = route_counter_broadcast(
            graph, result.routing, 0, faults=faults, counter_limit=limit
        )
        assert outcome.complete

    def test_reuses_supplied_index(self, cycle_setup):
        from repro.core import RouteIndex
        from repro.network import counter_limit_suffices

        graph, result = cycle_setup
        index = RouteIndex(graph, result.routing)
        assert counter_limit_suffices(
            graph, result.routing, 6, faults={3}, index=index
        ) == counter_limit_suffices(graph, result.routing, 6, faults={3})

    def test_rejects_foreign_index(self, cycle_setup):
        from repro.core import RouteIndex
        from repro.network import counter_limit_suffices

        graph, result = cycle_setup
        other_graph = generators.cycle_graph(8)
        other = kernel_routing(other_graph)
        foreign = RouteIndex(other_graph, other.routing)
        with pytest.raises(ValueError):
            counter_limit_suffices(graph, result.routing, 6, index=foreign)

"""Unit tests for the fixed-route network simulator."""

import pytest

from repro.core import circular_routing, full_multirouting, kernel_routing, surviving_distance
from repro.exceptions import DeliveryError, SimulationError
from repro.graphs import generators
from repro.network import ChecksumService, NetworkSimulator, XorEncryptionService


@pytest.fixture(scope="module")
def cycle_simulator_factory():
    graph = generators.cycle_graph(12)
    result = circular_routing(graph)

    def factory(**kwargs):
        return NetworkSimulator(graph, result.routing, **kwargs), graph, result

    return factory


class TestFaultManagement:
    def test_fail_and_repair(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        simulator.fail_node(3)
        assert simulator.failed_nodes() == [3]
        simulator.repair_node(3)
        assert simulator.failed_nodes() == []

    def test_fail_many(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        simulator.fail_nodes([1, 5])
        assert sorted(simulator.failed_nodes()) == [1, 5]

    def test_unknown_node_rejected(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        with pytest.raises(SimulationError):
            simulator.fail_node("ghost")
        with pytest.raises(SimulationError):
            simulator.repair_node("ghost")

    def test_surviving_graph_cache_invalidation(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        before = simulator.surviving_graph().number_of_nodes()
        simulator.fail_node(0)
        after = simulator.surviving_graph().number_of_nodes()
        assert after == before - 1


class TestDelivery:
    def test_fault_free_delivery(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        receipt = simulator.send(0, 6, "hello")
        assert receipt.delivered
        assert receipt.routes_used >= 1
        assert receipt.hops >= receipt.routes_used
        assert simulator.nodes[6].application_inbox == ["hello"]

    def test_routes_used_matches_surviving_distance(self, cycle_simulator_factory):
        simulator, graph, result = cycle_simulator_factory()
        simulator.fail_node(3)
        receipt = simulator.send(0, 6, "payload")
        assert receipt.delivered
        assert receipt.routes_used == surviving_distance(graph, result.routing, {3}, 0, 6)

    def test_delivery_with_endpoint_services(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory(service=XorEncryptionService())
        receipt = simulator.send(2, 9, "classified")
        assert receipt.delivered
        assert simulator.nodes[9].application_inbox == ["classified"]
        assert receipt.latency > 0

    def test_checksum_service(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory(service=ChecksumService())
        receipt = simulator.send(1, 7, "verified")
        assert receipt.delivered
        assert simulator.nodes[7].application_inbox == ["verified"]

    def test_delivery_to_failed_destination_fails(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        simulator.fail_node(6)
        receipt = simulator.send(0, 6, "lost")
        assert not receipt.delivered
        assert "failed" in receipt.failure_reason

    def test_delivery_from_failed_origin_fails(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        simulator.fail_node(0)
        receipt = simulator.send(0, 6, "lost")
        assert not receipt.delivered

    def test_statistics_accumulate(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        simulator.send(0, 5, "a")
        simulator.send(1, 8, "b")
        assert simulator.stats.messages_sent == 2
        assert simulator.stats.messages_delivered == 2
        assert simulator.stats.delivery_ratio() == 1.0
        assert simulator.stats.total_hops > 0

    def test_describe(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        simulator.send(0, 5, "a")
        assert "delivered" in simulator.describe()


class TestPlanning:
    def test_plan_is_empty_for_self_delivery(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        assert simulator.plan_route_sequence(4, 4) == []

    def test_plan_uses_surviving_routes_only(self, cycle_simulator_factory):
        simulator, graph, result = cycle_simulator_factory()
        simulator.fail_node(3)
        plan = simulator.plan_route_sequence(0, 6)
        failed = set(simulator.failed_nodes())
        for source, target in plan:
            path = result.routing.get_route(source, target)
            assert path is not None
            assert not (set(path) & failed)

    def test_plan_unreachable_raises(self):
        # Edge-only routing on a cycle: cutting two antipodal nodes splits it.
        graph = generators.cycle_graph(8)
        from repro.core import Routing

        routing = Routing(graph)
        routing.add_all_edge_routes()
        simulator = NetworkSimulator(graph, routing)
        simulator.fail_nodes([0, 4])
        with pytest.raises(DeliveryError):
            simulator.plan_route_sequence(2, 6)
        receipt = simulator.send(2, 6, "nope")
        assert not receipt.delivered

    def test_plan_unknown_origin(self, cycle_simulator_factory):
        simulator, _graph, _result = cycle_simulator_factory()
        with pytest.raises(DeliveryError):
            simulator.plan_route_sequence("ghost", 3)


class TestMultiroutingDelivery:
    def test_multirouting_single_segment(self):
        graph = generators.circulant_graph(8, [1, 2])
        result = full_multirouting(graph)
        simulator = NetworkSimulator(graph, result.routing)
        simulator.fail_node(1)
        receipt = simulator.send(0, 4, "direct")
        assert receipt.delivered
        assert receipt.routes_used == 1  # diameter-1 guarantee

    def test_kernel_routing_delivery_under_faults(self):
        graph = generators.circulant_graph(10, [1, 2])
        result = kernel_routing(graph)
        simulator = NetworkSimulator(graph, result.routing)
        simulator.fail_node(result.concentrator[0])
        receipt = simulator.send(0, 5, "resilient")
        assert receipt.delivered
        assert receipt.routes_used <= 2 * result.t

"""Unit tests for the NetworkNode process."""

import pytest

from repro.exceptions import SimulationError
from repro.network import Message, NetworkNode


def make_message(route):
    message = Message(origin=route[0], final_destination=route[-1], payload="x")
    message.attach_route(route)
    return message


class TestForwarding:
    def test_forward_returns_next_hop(self):
        node = NetworkNode("a")
        message = make_message(["a", "b", "c"])
        assert node.forward(message) == "b"
        assert node.stats.forwarded == 1

    def test_forward_at_segment_end_returns_none(self):
        node = NetworkNode("c")
        message = make_message(["a", "b", "c"])
        message.advance()
        message.advance()
        assert node.forward(message) is None
        assert node.stats.received == 1

    def test_forward_wrong_position_rejected(self):
        node = NetworkNode("z")
        message = make_message(["a", "b"])
        with pytest.raises(SimulationError):
            node.forward(message)

    def test_failed_node_drops(self):
        node = NetworkNode("a")
        node.fail()
        message = make_message(["a", "b"])
        with pytest.raises(SimulationError):
            node.forward(message)
        assert node.stats.dropped == 1

    def test_can_forward_reflects_liveness(self):
        node = NetworkNode("a")
        message = make_message(["a", "b"])
        assert node.can_forward(message)
        node.fail()
        assert not node.can_forward(message)
        node.repair()
        assert node.can_forward(message)


class TestDelivery:
    def test_deliver_to_application(self):
        node = NetworkNode("b")
        message = make_message(["a", "b"])
        node.deliver(message, "payload")
        assert node.application_inbox == ["payload"]
        assert node.delivered == [message]

    def test_failed_node_cannot_deliver(self):
        node = NetworkNode("b")
        node.fail()
        with pytest.raises(SimulationError):
            node.deliver(make_message(["a", "b"]), "payload")

    def test_repr_shows_status(self):
        node = NetworkNode("b")
        assert "up" in repr(node)
        node.fail()
        assert "FAILED" in repr(node)

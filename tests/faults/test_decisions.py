"""Bounded-decision campaigns through ``run_campaign(bound=...)``."""

from __future__ import annotations

import pickle

import pytest

from repro.core import RouteIndex, kernel_routing
from repro.faults import CampaignEngine, DecisionCampaignResult, run_campaign
from repro.faults.adversary import random_fault_sets
from repro.graphs import generators


@pytest.fixture(scope="module")
def workload():
    graph = generators.cycle_graph(16)
    result = kernel_routing(graph)
    return graph, result.routing


class TestDecisionCampaigns:
    def test_returns_decision_result(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        row = engine.run_campaign(2, samples=15, seed=3, bound=4)
        assert isinstance(row, DecisionCampaignResult)
        assert row.bound == 4
        assert row.samples == 15
        assert row.violations + round(row.pass_fraction * row.samples) == row.samples
        assert row.bfs_strategy in ("batched", "per-source")

    def test_decisions_agree_with_exact_evaluation(self, workload):
        """A set is a violation iff its exact surviving diameter exceeds the bound."""
        graph, routing = workload
        index = RouteIndex(graph, routing)
        battery = list(random_fault_sets(graph.nodes(), 3, 25, seed=7))
        bound = 4
        engine = CampaignEngine(graph, routing, index=index)
        row = engine.run_campaign(3, fault_sets=battery, bound=bound)
        exact = [index.surviving_diameter(fault_set) for fault_set in battery]
        expected_violations = sum(1 for diam in exact if diam > bound)
        assert row.violations == expected_violations
        if expected_violations:
            first = next(
                fault_set
                for fault_set, diam in zip(battery, exact)
                if diam > bound
            )
            assert row.first_violation == first
        assert row.holds == (expected_violations == 0)

    def test_worst_diameter_exact_while_bound_holds(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        index = RouteIndex(graph, routing)
        row = engine.run_campaign(1, samples=20, seed=2, bound=10)
        assert row.holds
        # With a generous bound every capped outcome is exact, so the worst
        # matches the exact campaign's max over the same battery.
        exact_row = engine.run_campaign(1, samples=20, seed=2)
        assert row.worst_diameter == exact_row.max_diameter

    def test_rows_identical_for_1_vs_4_workers(self, workload):
        graph, routing = workload
        sequential = CampaignEngine(graph, routing, workers=1)
        with CampaignEngine(graph, routing, workers=4) as parallel:
            a = [
                row.as_row()
                for row in sequential.sweep_fault_sizes([1, 2, 3], samples=18, seed=4, bound=4)
            ]
            b = [
                row.as_row()
                for row in parallel.sweep_fault_sizes([1, 2, 3], samples=18, seed=4, bound=4)
            ]
        assert a == b

    def test_module_level_run_campaign_bound(self, workload):
        graph, routing = workload
        row = run_campaign(graph, routing, 2, samples=10, seed=1, bound=5)
        assert isinstance(row, DecisionCampaignResult)

    def test_decision_row_rendering(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        row = engine.run_campaign(2, samples=10, seed=1, bound=2)
        flat = row.as_row()
        assert flat["bound"] == 2
        assert flat["holds"] in ("yes", "NO")
        assert 0.0 <= flat["pass"] <= 1.0


class TestSlimIndex:
    def test_slim_index_evaluates_identically(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        slim = index.slim()
        assert slim.graph is None and slim.routing is None
        for fault_set in random_fault_sets(graph.nodes(), 2, 10, seed=5):
            assert slim.surviving_diameter(fault_set) == index.surviving_diameter(
                fault_set
            )
            assert slim.surviving_diameter_at_most(fault_set, 4) == (
                index.surviving_diameter(fault_set) <= 4
            )

    def test_slim_payload_is_smaller(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        full = len(pickle.dumps(index))
        slim = len(pickle.dumps(index.slim()))
        assert slim < full

    def test_slim_survives_pickling(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        restored = pickle.loads(pickle.dumps(index.slim()))
        fault_set = next(iter(random_fault_sets(graph.nodes(), 2, 1, seed=9)))
        assert restored.surviving_diameter(fault_set) == index.surviving_diameter(
            fault_set
        )
        assert restored.node_pool == index.node_pool

    def test_slim_does_not_match_originals(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        assert not index.slim().matches(graph, routing)

"""Unit tests for fault-set models and the edge-fault convention."""

import pytest

from repro.exceptions import FaultModelError
from repro.faults import FaultSet, empty_fault_set
from repro.graphs import generators


class TestFaultSetBasics:
    def test_construction_and_iteration(self):
        fault_set = FaultSet([1, 2, 3], description="demo")
        assert len(fault_set) == 3
        assert set(fault_set) == {1, 2, 3}
        assert 2 in fault_set
        assert 9 not in fault_set
        assert fault_set.description == "demo"

    def test_equality_with_sets_and_fault_sets(self):
        assert FaultSet([1, 2]) == FaultSet([2, 1])
        assert FaultSet([1, 2]) == {1, 2}
        assert FaultSet([1]) != FaultSet([2])
        assert FaultSet([1]) != "not a set"

    def test_hashable(self):
        collection = {FaultSet([1, 2]), FaultSet([2, 1]), FaultSet([3])}
        assert len(collection) == 2

    def test_union(self):
        fault_set = FaultSet([1], description="seed")
        bigger = fault_set.union([2, 3])
        assert set(bigger) == {1, 2, 3}
        assert bigger.description == "seed"
        assert set(fault_set) == {1}

    def test_nodes_frozenset(self):
        assert FaultSet([1, 2]).nodes() == frozenset({1, 2})

    def test_repr_preview(self):
        fault_set = FaultSet(range(10), description="big")
        text = repr(fault_set)
        assert "big" in text
        assert "size=10" in text
        assert "..." in text

    def test_empty_fault_set(self):
        empty = empty_fault_set()
        assert len(empty) == 0
        assert empty.description == "no faults"


class TestValidation:
    def test_validate_ok(self):
        graph = generators.cycle_graph(6)
        FaultSet([0, 3]).validate(graph)

    def test_validate_unknown_node(self):
        graph = generators.cycle_graph(6)
        with pytest.raises(FaultModelError):
            FaultSet([99]).validate(graph)

    def test_leaves_connected(self):
        graph = generators.cycle_graph(6)
        assert FaultSet([0]).leaves_connected(graph)
        assert not FaultSet([0, 3]).leaves_connected(graph)

    def test_leaves_connected_everything_removed(self):
        graph = generators.cycle_graph(3)
        assert not FaultSet([0, 1, 2]).leaves_connected(graph)


class TestEdgeFaultConversion:
    def test_lower_degree_endpoint_chosen(self):
        graph = generators.star_graph(4)
        fault_set = FaultSet.from_edge_faults(graph, [(0, 1)])
        assert set(fault_set) == {1}  # the leaf, not the hub

    def test_higher_degree_endpoint_chosen(self):
        graph = generators.star_graph(4)
        fault_set = FaultSet.from_edge_faults(graph, [(0, 1)], prefer_lower_degree=False)
        assert set(fault_set) == {0}

    def test_edge_already_covered(self):
        graph = generators.cycle_graph(6)
        fault_set = FaultSet.from_edge_faults(graph, [(0, 1), (1, 2)])
        # One node can cover two incident edge faults.
        assert len(fault_set) <= 2
        for u, v in [(0, 1), (1, 2)]:
            assert u in fault_set or v in fault_set

    def test_unknown_edge_rejected(self):
        graph = generators.cycle_graph(6)
        with pytest.raises(FaultModelError):
            FaultSet.from_edge_faults(graph, [(0, 3)])

    def test_coverage_of_many_edges(self):
        graph = generators.cycle_graph(10)
        edges = [(0, 1), (4, 5), (7, 8)]
        fault_set = FaultSet.from_edge_faults(graph, edges)
        for u, v in edges:
            assert u in fault_set or v in fault_set

"""Unit tests for fault-set generation strategies (exhaustive, random, targeted, greedy)."""

import math

import pytest

from repro.core import Routing, kernel_routing, surviving_diameter
from repro.faults import (
    all_fault_sets,
    combined_fault_sets,
    count_fault_sets,
    greedy_adversarial_fault_set,
    random_fault_sets,
    targeted_fault_sets,
)
from repro.graphs import generators


@pytest.fixture(scope="module")
def cycle_routing():
    graph = generators.cycle_graph(10)
    return graph, kernel_routing(graph)


class TestExhaustiveEnumeration:
    def test_all_sizes_up_to_bound(self):
        sets = list(all_fault_sets(range(5), 2))
        assert len(sets) == 1 + 5 + 10
        sizes = {len(fault_set) for fault_set in sets}
        assert sizes == {0, 1, 2}

    def test_exact_size_only(self):
        sets = list(all_fault_sets(range(5), 2, include_smaller=False))
        assert len(sets) == 10
        assert all(len(fault_set) == 2 for fault_set in sets)

    def test_count_matches_enumeration(self):
        assert count_fault_sets(5, 2) == 16
        assert count_fault_sets(5, 2, include_smaller=False) == math.comb(5, 2)
        assert count_fault_sets(10, 0) == 1

    def test_deterministic_order(self):
        first = [fs.nodes() for fs in all_fault_sets(range(4), 1)]
        second = [fs.nodes() for fs in all_fault_sets(range(4), 1)]
        assert first == second


class TestRandomFaultSets:
    def test_size_and_count(self):
        sets = list(random_fault_sets(range(20), 3, 7, seed=1))
        assert len(sets) == 7
        assert all(len(fault_set) == 3 for fault_set in sets)

    def test_reproducible_with_seed(self):
        first = [fs.nodes() for fs in random_fault_sets(range(20), 3, 5, seed=42)]
        second = [fs.nodes() for fs in random_fault_sets(range(20), 3, 5, seed=42)]
        assert first == second

    def test_exclude(self):
        sets = list(random_fault_sets(range(10), 2, 20, seed=0, exclude=[0, 1, 2]))
        for fault_set in sets:
            assert not (set(fault_set) & {0, 1, 2})

    def test_too_large_size_yields_nothing(self):
        assert list(random_fault_sets(range(3), 5, 10, seed=0)) == []


class TestTargetedFaultSets:
    def test_concentrator_subsets_present(self, cycle_routing):
        graph, result = cycle_routing
        sets = list(
            targeted_fault_sets(graph, 1, concentrator=result.concentrator, routing=result.routing)
        )
        concentrator_sets = [
            fs for fs in sets if "concentrator" in fs.description
        ]
        assert concentrator_sets
        for fault_set in concentrator_sets:
            assert set(fault_set) <= set(result.concentrator)

    def test_neighbourhood_attacks_present(self, cycle_routing):
        graph, result = cycle_routing
        sets = list(targeted_fault_sets(graph, 2, routing=result.routing))
        neighbour_sets = [fs for fs in sets if "neighbours" in fs.description]
        assert neighbour_sets
        for fault_set in neighbour_sets:
            assert len(fault_set) == 2

    def test_route_attacks_present(self, cycle_routing):
        graph, result = cycle_routing
        sets = list(targeted_fault_sets(graph, 1, routing=result.routing))
        assert any("routes of" in fs.description for fs in sets)

    def test_zero_size_yields_nothing(self, cycle_routing):
        graph, result = cycle_routing
        assert list(targeted_fault_sets(graph, 0, concentrator=result.concentrator)) == []


class TestGreedyAdversary:
    def test_respects_size(self, cycle_routing):
        graph, result = cycle_routing
        fault_set = greedy_adversarial_fault_set(graph, result.routing, 2, seed=0)
        assert len(fault_set) == 2
        assert fault_set.description == "greedy adversarial"

    def test_at_least_as_bad_as_no_faults(self, cycle_routing):
        graph, result = cycle_routing
        fault_set = greedy_adversarial_fault_set(graph, result.routing, 1, seed=0)
        assert surviving_diameter(graph, result.routing, fault_set) >= surviving_diameter(
            graph, result.routing, ()
        )

    def test_zero_size(self, cycle_routing):
        graph, result = cycle_routing
        assert len(greedy_adversarial_fault_set(graph, result.routing, 0, seed=0)) == 0

    def test_prefers_disconnection_when_no_finite_candidate_improves(self):
        """Above the connectivity, ``inf`` is the true worst case.

        On an edge-only routed cycle, the second fault either shaves the
        surviving path (finite diameter *smaller* than the incumbent) or
        disconnects it (``inf``).  The greedy adversary must take the
        disconnection instead of settling for the finite plateau.
        """
        graph = generators.cycle_graph(8)
        routing = Routing(graph, name="edges-only")
        routing.add_all_edge_routes()
        fault_set = greedy_adversarial_fault_set(graph, routing, 2, seed=0)
        assert len(fault_set) == 2
        assert surviving_diameter(graph, routing, fault_set) == float("inf")

    def test_keeps_improving_finite_diameters_below_connectivity(self, cycle_routing):
        """Below the connectivity no candidate disconnects, so the greedy
        search must still chase the largest finite diameter."""
        graph, result = cycle_routing
        fault_set = greedy_adversarial_fault_set(graph, result.routing, 1, seed=0)
        assert surviving_diameter(graph, result.routing, fault_set) < float("inf")

    def test_matches_index_free_run(self, cycle_routing):
        """Passing a pre-built index must not change the selected fault set."""
        from repro.core import RouteIndex

        graph, result = cycle_routing
        index = RouteIndex(graph, result.routing)
        with_index = greedy_adversarial_fault_set(
            graph, result.routing, 2, seed=5, index=index
        )
        without = greedy_adversarial_fault_set(graph, result.routing, 2, seed=5)
        assert with_index.nodes() == without.nodes()


class TestCombinedBattery:
    def test_includes_baseline_and_unique_sets(self, cycle_routing):
        graph, result = cycle_routing
        battery = combined_fault_sets(
            graph, result.routing, 1, concentrator=result.concentrator, random_count=10, seed=3
        )
        assert battery[0].nodes() == frozenset()
        keys = [fs.nodes() for fs in battery]
        assert len(keys) == len(set(keys))

    def test_sizes_bounded(self, cycle_routing):
        graph, result = cycle_routing
        battery = combined_fault_sets(graph, result.routing, 2, seed=1)
        assert all(len(fs) <= 2 for fs in battery)

    def test_greedy_can_be_disabled(self, cycle_routing):
        graph, result = cycle_routing
        battery = combined_fault_sets(graph, result.routing, 1, include_greedy=False, seed=1)
        assert all(fs.description != "greedy adversarial" for fs in battery)


class TestBatchedGreedy:
    """The batched greedy path must reproduce the sequential one exactly."""

    def test_batched_matches_sequential(self, cycle_routing):
        graph, result = cycle_routing
        for seed in (0, 3, 11):
            batched = greedy_adversarial_fault_set(
                graph, result.routing, 3, seed=seed, batched=True
            )
            sequential = greedy_adversarial_fault_set(
                graph, result.routing, 3, seed=seed, batched=False
            )
            assert batched.nodes() == sequential.nodes()

    def test_batched_matches_sequential_under_candidate_limit(self, cycle_routing):
        graph, result = cycle_routing
        for limit in (2, 4, 7):
            batched = greedy_adversarial_fault_set(
                graph, result.routing, 2, candidate_limit=limit, seed=9, batched=True
            )
            sequential = greedy_adversarial_fault_set(
                graph, result.routing, 2, candidate_limit=limit, seed=9, batched=False
            )
            assert batched.nodes() == sequential.nodes()

    def test_index_entry_point_matches_graph_entry_point_diameter(self, cycle_routing):
        """greedy_fault_set_from_index walks the repr-sorted node pool, so
        its picks may differ from the graph-order walk — but both must be
        valid greedy sets of the requested size."""
        from repro.core import RouteIndex
        from repro.faults.adversary import greedy_fault_set_from_index

        graph, result = cycle_routing
        index = RouteIndex(graph, result.routing)
        fault_set = greedy_fault_set_from_index(index, 2, seed=4)
        assert len(fault_set) == 2
        assert fault_set.nodes() <= frozenset(graph.nodes())

    def test_index_entry_point_batched_matches_sequential(self, cycle_routing):
        from repro.core import RouteIndex
        from repro.faults.adversary import greedy_fault_set_from_index

        graph, result = cycle_routing
        index = RouteIndex(graph, result.routing)
        for seed in (1, 6):
            assert greedy_fault_set_from_index(
                index, 3, seed=seed, batched=True
            ).nodes() == greedy_fault_set_from_index(
                index, 3, seed=seed, batched=False
            ).nodes()

    def test_combined_battery_candidate_limit_passthrough(self, cycle_routing):
        """candidate_limit reaches the greedy member of the combined battery."""
        graph, result = cycle_routing
        full = combined_fault_sets(graph, result.routing, 2, seed=2)
        limited = combined_fault_sets(
            graph, result.routing, 2, seed=2, candidate_limit=1
        )
        # Non-greedy members are identical; only the greedy pick may move.
        greedy_full = [fs for fs in full if fs.description == "greedy adversarial"]
        greedy_limited = [
            fs for fs in limited if fs.description == "greedy adversarial"
        ]
        assert len(greedy_full) <= 1 and len(greedy_limited) <= 1
        rest_full = [fs.nodes() for fs in full if fs.description != "greedy adversarial"]
        rest_limited = [
            fs.nodes() for fs in limited if fs.description != "greedy adversarial"
        ]
        assert rest_full == rest_limited

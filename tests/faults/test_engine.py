"""Unit tests for the sharded, indexed campaign engine.

The central contract under test is determinism: the same integer seed must
produce byte-identical campaign rows no matter how many worker processes
evaluate the battery, because sharding and per-shard seeding depend only on
the battery and chunk size — never on the pool.
"""

import random as _random

import pytest

from repro.core import kernel_routing, worst_case_diameter
from repro.faults import (
    CampaignEngine,
    FaultSet,
    combined_fault_sets,
    run_campaign,
    shard_seed,
    sweep_fault_sizes,
)
from repro.graphs import generators


@pytest.fixture(scope="module")
def workload():
    graph = generators.circulant_graph(14, [1, 2])
    result = kernel_routing(graph)
    return graph, result.routing


def _rows(campaigns):
    return [
        (campaign.as_row(), campaign.worst_fault_set and campaign.worst_fault_set.nodes())
        for campaign in campaigns
    ]


class TestShardSeed:
    def test_stable_across_calls(self):
        assert shard_seed(7, "size=3", 2) == shard_seed(7, "size=3", 2)

    def test_distinct_per_shard_and_tag(self):
        seeds = {shard_seed(7, tag, shard) for tag in ("a", "b") for shard in range(4)}
        assert len(seeds) == 8


class TestEngineDeterminism:
    def test_run_campaign_same_rows_for_any_worker_count(self, workload):
        graph, routing = workload
        sequential = CampaignEngine(graph, routing, workers=1)
        parallel = CampaignEngine(graph, routing, workers=3)
        first = sequential.run_campaign(2, samples=40, seed=11)
        second = parallel.run_campaign(2, samples=40, seed=11)
        assert first == second
        assert first.worst_fault_set.nodes() == second.worst_fault_set.nodes()

    def test_sweep_same_rows_for_any_worker_count(self, workload):
        graph, routing = workload
        sequential = CampaignEngine(graph, routing, workers=1)
        parallel = CampaignEngine(graph, routing, workers=2)
        assert _rows(
            sequential.sweep_fault_sizes([0, 1, 2, 3], samples=15, seed=5)
        ) == _rows(parallel.sweep_fault_sizes([0, 1, 2, 3], samples=15, seed=5))

    def test_module_level_wrappers_forward_workers(self, workload):
        graph, routing = workload
        assert run_campaign(graph, routing, 2, samples=20, seed=9) == run_campaign(
            graph, routing, 2, samples=20, seed=9, workers=2
        )
        assert _rows(
            sweep_fault_sizes(graph, routing, [1, 2], samples=10, seed=3)
        ) == _rows(sweep_fault_sizes(graph, routing, [1, 2], samples=10, seed=3, workers=2))

    def test_explicit_battery_same_for_any_worker_count(self, workload):
        graph, routing = workload
        battery = combined_fault_sets(graph, routing, 2, random_count=20, seed=0)
        sequential = CampaignEngine(graph, routing, workers=1)
        parallel = CampaignEngine(graph, routing, workers=2)
        assert list(sequential.evaluate(battery)) == list(parallel.evaluate(battery))

    def test_chunk_size_does_not_change_explicit_outcomes(self, workload):
        graph, routing = workload
        battery = combined_fault_sets(graph, routing, 2, random_count=20, seed=1)
        small = CampaignEngine(graph, routing, chunk_size=3)
        large = CampaignEngine(graph, routing, chunk_size=500)
        assert list(small.evaluate(battery)) == list(large.evaluate(battery))

    def test_duplicate_sweep_sizes_draw_independent_batteries(self, workload):
        """Repeating a size in a sweep must sample fresh fault sets, not
        replay the first campaign (seeds are derived per position)."""
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        first, second = engine.sweep_fault_sizes([3, 3], samples=8, seed=0)
        assert first.worst_fault_set.nodes() != second.worst_fault_set.nodes()

    def test_pool_reused_across_campaigns_and_closeable(self, workload):
        graph, routing = workload
        with CampaignEngine(graph, routing, workers=2) as engine:
            engine.run_campaign(1, samples=5, seed=0)
            pool = engine._pool
            assert pool is not None
            engine.run_campaign(2, samples=5, seed=0)
            assert engine._pool is pool
        assert engine._pool is None
        # Engine remains usable after close (a fresh pool is started).
        result = engine.run_campaign(1, samples=5, seed=0)
        assert result.samples == 5
        engine.close()

    def test_random_instance_seed_keeps_legacy_stream(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        first = engine.run_campaign(2, samples=10, seed=_random.Random(4))
        second = engine.run_campaign(2, samples=10, seed=_random.Random(4))
        assert first == second


class TestExhaustiveShards:
    def test_shards_reproduce_all_fault_sets_order(self, workload):
        from repro.faults import all_fault_sets

        graph, routing = workload
        engine = CampaignEngine(graph, routing, chunk_size=7)
        sharded = [
            fault_set.nodes()
            for shard in engine._exhaustive_shards(2)
            for fault_set in shard.materialise(graph)
        ]
        reference = [fs.nodes() for fs in all_fault_sets(graph.nodes(), 2)]
        assert sharded == reference

    def test_combinations_slice_matches_islice_reference(self):
        import itertools

        from repro.faults.engine import _combinations_slice

        pool = list(range(9))
        for size in range(0, 5):
            reference = list(itertools.combinations(pool, size))
            for start in range(0, len(reference) + 2):
                for count in (1, 3, len(reference) + 5):
                    expected = reference[start : start + count]
                    assert list(_combinations_slice(pool, size, start, count)) == expected

    def test_shard_boundaries_deterministic(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing, chunk_size=5)
        first = [
            (shard.exhaustive_size, shard.start, shard.count)
            for shard in engine._exhaustive_shards(2)
        ]
        second = [
            (shard.exhaustive_size, shard.start, shard.count)
            for shard in engine._exhaustive_shards(2)
        ]
        assert first == second
        assert all(size is not None for size, _, _ in first)

    def test_exhaustive_worst_case_matches_explicit_battery(self, workload):
        from repro.faults import all_fault_sets

        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        battery = list(all_fault_sets(graph.nodes(), 2))
        exact, exact_set, exact_count = engine.worst_case(battery)
        worst, worst_set, evaluated, holds = engine.exhaustive_worst_case(
            2, bound=float("inf")
        )
        assert holds
        assert evaluated == exact_count == len(battery)
        assert worst == exact
        assert worst_set.nodes() == exact_set.nodes()

    def test_exhaustive_parallel_matches_sequential(self, workload):
        graph, routing = workload
        sequential = CampaignEngine(graph, routing, workers=1)
        with CampaignEngine(graph, routing, workers=2) as parallel:
            seq = sequential.exhaustive_worst_case(2, bound=float("inf"))
            par = parallel.exhaustive_worst_case(2, bound=float("inf"))
        assert seq[0] == par[0]
        assert seq[1].nodes() == par[1].nodes()
        assert seq[2:] == par[2:]


class TestBoundedScan:
    def test_holding_bound_evaluates_everything_exactly(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        battery = combined_fault_sets(graph, routing, 2, random_count=10, seed=4)
        exact, exact_set, count = engine.worst_case(battery)
        worst, worst_set, evaluated, holds = engine.bounded_worst_case(
            battery, bound=exact
        )
        assert holds
        assert evaluated == count
        assert worst == exact
        assert worst_set.nodes() == exact_set.nodes()

    def test_violation_stops_at_first_witness(self):
        from repro.core import Routing
        from repro.graphs import generators as _generators

        # Edge-routed C_8: diameter 4 fault-free, 6 after any single fault.
        graph = _generators.cycle_graph(8)
        routing = Routing(graph, name="edges-only")
        routing.add_all_edge_routes()
        engine = CampaignEngine(graph, routing)
        battery = [FaultSet(()), FaultSet({0}), FaultSet({1}), FaultSet({2})]
        worst, worst_set, evaluated, holds = engine.bounded_worst_case(battery, 4)
        assert not holds
        assert worst_set.nodes() == frozenset({0})
        assert evaluated == 2  # empty set + the first violating set
        assert worst == 6  # exact witness diameter, not just "> bound"

    def test_parallel_scan_matches_sequential(self, workload):
        graph, routing = workload
        battery = combined_fault_sets(graph, routing, 2, random_count=12, seed=8)
        sequential = CampaignEngine(graph, routing, workers=1)
        with CampaignEngine(graph, routing, workers=2) as parallel:
            for bound in [2, 3, float("inf")]:
                seq = sequential.bounded_worst_case(battery, bound)
                par = parallel.bounded_worst_case(battery, bound)
                assert seq[0] == par[0]
                assert (seq[1] and seq[1].nodes()) == (par[1] and par[1].nodes())
                assert seq[2:] == par[2:]


class TestIndexShipping:
    def test_prebuilt_index_is_shipped_to_workers(self, workload):
        """The pool initializer must receive the slim form of the engine's index."""
        graph, routing = workload
        from repro.core import RouteIndex
        from repro.faults import engine as engine_module

        index = RouteIndex(graph, routing)
        engine = CampaignEngine(graph, routing, workers=2, index=index)
        recorded = {}

        class _FakePool:
            def imap(self, func, iterable):
                return iter(())

            def terminate(self):
                pass

            def join(self):
                pass

        def fake_pool_factory(workers, initializer=None, initargs=()):
            recorded["initargs"] = initargs
            initializer(*initargs)
            return _FakePool()

        import multiprocessing

        original = multiprocessing.Pool
        multiprocessing.Pool = fake_pool_factory
        try:
            engine._ensure_pool()
        finally:
            multiprocessing.Pool = original
            engine.close()
        assert len(recorded["initargs"]) == 1
        shipped = recorded["initargs"][0]
        # The slim payload shares the engine index's bitset structures but
        # drops the graph and routing objects (they never cross the boundary).
        assert shipped is not index
        assert shipped.graph is None and shipped.routing is None
        assert shipped._base_rows is index._base_rows
        assert shipped._kill_rows is index._kill_rows
        assert shipped.node_pool == index.node_pool
        assert engine_module._WORKER_INDEX is shipped
        engine_module._WORKER_INDEX = None

    def test_parallel_results_with_prebuilt_index(self, workload):
        graph, routing = workload
        from repro.core import RouteIndex

        index = RouteIndex(graph, routing)
        sequential = CampaignEngine(graph, routing, workers=1, index=index)
        with CampaignEngine(graph, routing, workers=2, index=index) as parallel:
            assert sequential.run_campaign(2, samples=20, seed=3) == parallel.run_campaign(
                2, samples=20, seed=3
            )


class TestEngineSemantics:
    def test_worst_case_matches_tolerance_helper(self, workload):
        graph, routing = workload
        battery = combined_fault_sets(graph, routing, 2, random_count=15, seed=2)
        engine = CampaignEngine(graph, routing)
        assert engine.worst_case(battery) == worst_case_diameter(graph, routing, battery)

    def test_parallel_worst_case_matches_sequential(self, workload):
        graph, routing = workload
        battery = combined_fault_sets(graph, routing, 2, random_count=15, seed=2)
        assert worst_case_diameter(graph, routing, battery) == worst_case_diameter(
            graph, routing, battery, workers=2
        )

    def test_empty_battery_rejected(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        with pytest.raises(ValueError):
            engine.run_campaign(1, fault_sets=[])

    def test_oversized_fault_size_rejected(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        with pytest.raises(ValueError):
            engine.run_campaign(graph.number_of_nodes() + 1, samples=5, seed=0)

    def test_invalid_parameters_rejected(self, workload):
        graph, routing = workload
        with pytest.raises(ValueError):
            CampaignEngine(graph, routing, workers=0)
        with pytest.raises(ValueError):
            CampaignEngine(graph, routing, chunk_size=0)

    def test_mismatched_index_rejected(self, workload):
        graph, routing = workload
        other = generators.cycle_graph(10)
        other_routing = kernel_routing(other).routing
        from repro.core import RouteIndex

        with pytest.raises(ValueError):
            CampaignEngine(graph, routing, index=RouteIndex(other, other_routing))

    def test_index_reuse_across_calls(self, workload):
        graph, routing = workload
        from repro.core import RouteIndex

        index = RouteIndex(graph, routing)
        engine = CampaignEngine(graph, routing, index=index)
        assert engine.index is index
        engine.run_campaign(1, samples=5, seed=0)
        assert engine.index is index

    def test_profile_preserves_battery_order(self, workload):
        graph, routing = workload
        battery = [FaultSet({0}), FaultSet({1}), FaultSet({2})]
        profile = CampaignEngine(graph, routing).profile(battery)
        assert [fault_set.nodes() for fault_set, _ in profile] == [
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
        ]
        assert all(diameter >= 1 for _, diameter in profile)


class TestGreedyAugmentation:
    def test_adversarial_worst_case_returns_exact_diameter(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        diameter, fault_set = engine.adversarial_worst_case(2, seed=0)
        assert len(fault_set) == 2
        assert diameter == engine.index.surviving_diameter(fault_set.nodes())

    def test_greedy_campaign_adds_one_battery_member(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        plain = engine.run_campaign(2, samples=8, seed=4)
        augmented = engine.run_campaign(2, samples=8, seed=4, greedy=True)
        assert plain.samples == 8
        assert augmented.samples == 9
        # The adversarial probe can only worsen (or match) the worst case.
        assert augmented.max_diameter >= plain.max_diameter

    def test_greedy_campaign_stamps_provenance_columns(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        augmented = engine.run_campaign(
            2, samples=5, seed=1, greedy=True, candidate_limit=7
        )
        plain = engine.run_campaign(2, samples=5, seed=1)
        assert augmented.candidate_limit == 7
        assert plain.candidate_limit is None
        assert augmented.eval_backend == engine.index.eval_backend
        record = augmented.record()
        assert record["candidate_limit"] == 7
        assert record["backend"] == engine.index.eval_backend

    def test_greedy_campaign_deterministic_across_workers(self, workload):
        graph, routing = workload
        sequential = CampaignEngine(graph, routing).run_campaign(
            2, samples=10, seed=6, greedy=True
        )
        parallel = CampaignEngine(graph, routing, workers=2).run_campaign(
            2, samples=10, seed=6, greedy=True
        )
        assert sequential.as_row() == parallel.as_row()
        assert sequential.worst_fault_set == parallel.worst_fault_set

    def test_greedy_sweep_passthrough(self, workload):
        graph, routing = workload
        engine = CampaignEngine(graph, routing)
        campaigns = engine.sweep_fault_sizes(
            [0, 2], samples=5, seed=3, greedy=True, candidate_limit=5
        )
        # Size 0 has no greedy probe (nothing to grow); size 2 does.
        assert campaigns[0].samples == 5
        assert campaigns[0].candidate_limit is None
        assert campaigns[1].samples == 6
        assert campaigns[1].candidate_limit == 5

    def test_greedy_round_trips_through_record(self, workload):
        graph, routing = workload
        from repro.faults import CampaignResult

        campaign = CampaignEngine(graph, routing).run_campaign(
            2, samples=5, seed=2, greedy=True
        )
        restored = CampaignResult.from_record(campaign.record())
        assert restored == campaign
        assert restored.candidate_limit == campaign.candidate_limit
        assert restored.eval_backend == campaign.eval_backend

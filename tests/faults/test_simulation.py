"""Unit tests for Monte-Carlo fault-injection campaigns."""

import pytest

from repro.core import kernel_routing
from repro.faults import FaultSet, run_campaign, sweep_fault_sizes
from repro.graphs import generators


@pytest.fixture(scope="module")
def routing_under_test():
    graph = generators.circulant_graph(12, [1, 2])
    return graph, kernel_routing(graph)


class TestRunCampaign:
    def test_basic_statistics(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(graph, result.routing, fault_size=2, samples=20, seed=0)
        assert campaign.samples == 20
        assert campaign.fault_size == 2
        assert campaign.min_diameter <= campaign.mean_diameter <= campaign.max_diameter
        assert 0.0 <= campaign.disconnected_fraction <= 1.0

    def test_reproducible(self, routing_under_test):
        graph, result = routing_under_test
        first = run_campaign(graph, result.routing, 2, samples=10, seed=7)
        second = run_campaign(graph, result.routing, 2, samples=10, seed=7)
        assert first.mean_diameter == second.mean_diameter
        assert first.max_diameter == second.max_diameter

    def test_zero_faults_matches_fault_free_diameter(self, routing_under_test):
        graph, result = routing_under_test
        from repro.core import surviving_diameter

        campaign = run_campaign(graph, result.routing, 0, samples=3, seed=1)
        assert campaign.max_diameter == surviving_diameter(graph, result.routing, ())
        assert campaign.disconnected_fraction == 0.0

    def test_explicit_fault_sets(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(
            graph,
            result.routing,
            fault_size=1,
            fault_sets=[FaultSet({0}), FaultSet({5})],
        )
        assert campaign.samples == 2

    def test_empty_fault_sets_rejected(self, routing_under_test):
        graph, result = routing_under_test
        with pytest.raises(ValueError):
            run_campaign(graph, result.routing, 1, fault_sets=[])

    def test_as_row(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(graph, result.routing, 1, samples=5, seed=2)
        row = campaign.as_row()
        assert row["faults"] == 1
        assert row["samples"] == 5
        assert "mean_diam" in row

    def test_worst_fault_set_recorded(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(graph, result.routing, 2, samples=10, seed=3)
        assert campaign.worst_fault_set is not None
        assert len(campaign.worst_fault_set) <= 2

    def test_disconnecting_fault_set_dominates_worst(self, routing_under_test):
        """Regression: a disconnecting set must win even when seen *after* a
        finite-diameter set (previously it only won when it came first)."""
        graph, result = routing_under_test
        from repro.core import surviving_diameter

        finite = FaultSet({0})
        isolating = FaultSet(set(graph.neighbors(3)), description="isolates 3")
        assert surviving_diameter(graph, result.routing, finite) < float("inf")
        assert surviving_diameter(graph, result.routing, isolating) == float("inf")
        campaign = run_campaign(
            graph, result.routing, fault_size=4, fault_sets=[finite, isolating]
        )
        assert campaign.disconnected_fraction == 0.5
        assert campaign.worst_fault_set == isolating

    def test_first_of_equal_worst_diameters_wins(self, routing_under_test):
        graph, result = routing_under_test
        first = FaultSet({0}, description="first")
        second = FaultSet({6}, description="second")
        campaign = run_campaign(
            graph, result.routing, fault_size=1, fault_sets=[first, second]
        )
        assert campaign.worst_fault_set.description == "first"


class TestRealisedFaultSizes:
    def test_fixed_size_battery_records_constant_sizes(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(graph, result.routing, 2, samples=10, seed=1)
        assert campaign.faults_min == campaign.faults_max == 2
        assert campaign.faults_mean == 2.0
        assert not campaign.variable_fault_sizes

    def test_variable_battery_surfaces_min_mean_max(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(
            graph,
            result.routing,
            fault_size=0,
            fault_sets=[FaultSet(()), FaultSet({0}), FaultSet({1, 5, 7})],
        )
        assert campaign.faults_min == 0
        assert campaign.faults_max == 3
        assert campaign.faults_mean == pytest.approx(4 / 3)
        assert campaign.variable_fault_sizes
        row = campaign.as_row()
        assert row["faults"] == "0..3"
        assert row["mean_faults"] == round(campaign.faults_mean, 2)


class TestRecordRoundTrip:
    def test_campaign_result_round_trips(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(graph, result.routing, 2, samples=10, seed=3)
        from repro.faults import CampaignResult

        record = campaign.record()
        assert record["kind"] == "exact"
        restored = CampaignResult.from_record(record)
        assert restored == campaign

    def test_decision_result_round_trips(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(
            graph, result.routing, 2, samples=10, seed=3, bound=4
        )
        from repro.faults import DecisionCampaignResult

        record = campaign.record()
        assert record["kind"] == "decision"
        assert record["pass_rate"] == campaign.pass_fraction
        restored = DecisionCampaignResult.from_record(record)
        assert restored == campaign

    def test_worst_fault_set_survives_the_round_trip(self, routing_under_test):
        graph, result = routing_under_test
        campaign = run_campaign(graph, result.routing, 2, samples=10, seed=5)
        from repro.faults import CampaignResult

        restored = CampaignResult.from_record(campaign.record())
        assert restored.worst_fault_set == campaign.worst_fault_set

    def test_disconnection_marks_worst_diam_infinite(self, routing_under_test):
        graph, result = routing_under_test
        isolating = FaultSet(set(graph.neighbors(3)))
        campaign = run_campaign(
            graph, result.routing, 4, fault_sets=[FaultSet({0}), isolating]
        )
        assert campaign.record()["worst_diam"] == float("inf")

    def test_run_campaign_emits_into_frame(self, routing_under_test):
        graph, result = routing_under_test
        from repro.results import result_frame

        frame = result_frame()
        campaign = run_campaign(
            graph, result.routing, 1, samples=5, seed=2, frame=frame
        )
        assert len(frame) == 1
        assert frame.row(0)["samples"] == campaign.samples
        assert frame.row(0)["source"] == "campaign"

    def test_sweep_emits_one_record_per_size(self, routing_under_test):
        graph, result = routing_under_test
        from repro.results import result_frame

        frame = result_frame()
        sweep_fault_sizes(
            graph, result.routing, sizes=[0, 1, 2], samples=5, seed=0, frame=frame
        )
        assert frame.column("faults") == (0, 1, 2)


class TestSweep:
    def test_sweep_sizes(self, routing_under_test):
        graph, result = routing_under_test
        campaigns = sweep_fault_sizes(graph, result.routing, sizes=[0, 1, 2], samples=5, seed=0)
        assert [c.fault_size for c in campaigns] == [0, 1, 2]

    def test_disconnection_appears_beyond_connectivity(self, routing_under_test):
        graph, result = routing_under_test
        # With far more faults than the connectivity the graph often
        # disconnects; the campaign must report it rather than crash.
        campaign = run_campaign(graph, result.routing, 8, samples=20, seed=5)
        assert campaign.samples == 20
        assert campaign.disconnected_fraction >= 0.0

"""Shared fixtures for the test suite.

Expensive objects (constructed routings on the synthetic benchmark graphs) are
session-scoped so the many tests that inspect them do not pay the construction
cost repeatedly.
"""

from __future__ import annotations

import pytest

from repro.core import (
    bidirectional_bipolar_routing,
    circular_routing,
    kernel_routing,
    tricircular_routing,
    unidirectional_bipolar_routing,
)
from repro.graphs import generators, synthetic


# ----------------------------------------------------------------------
# Small graphs
# ----------------------------------------------------------------------
@pytest.fixture
def cycle12():
    """A 12-cycle: 2-connected, two-trees property, neighbourhood sets galore."""
    return generators.cycle_graph(12)


@pytest.fixture
def petersen():
    """The Petersen graph: 3-regular, 3-connected, girth 5, diameter 2."""
    return generators.petersen_graph()


@pytest.fixture
def q3():
    """The 3-dimensional hypercube: 3-regular, 3-connected."""
    return generators.hypercube_graph(3)


@pytest.fixture
def grid44():
    """A 4x4 grid: planar, 2-connected."""
    return generators.grid_graph(4, 4)


@pytest.fixture
def k5():
    """The complete graph on 5 nodes."""
    return generators.complete_graph(5)


@pytest.fixture
def circulant_10_2():
    """The circulant C_10(1, 2): 4-regular and 4-connected."""
    return generators.circulant_graph(10, [1, 2])


# ----------------------------------------------------------------------
# Synthetic construction-specific graphs (session scoped: reused a lot)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def flower_t2_k5():
    """Flower graph with t=2 and 5 flowers (circular routing test bed)."""
    return synthetic.flower_graph(t=2, k=5)


@pytest.fixture(scope="session")
def flower_t1_k15():
    """Flower graph with t=1 and 15 flowers (tri-circular test bed)."""
    return synthetic.flower_graph(t=1, k=15)


@pytest.fixture(scope="session")
def two_trees_t2():
    """Two-trees graph with t=2 (bipolar routing test bed)."""
    return synthetic.two_trees_graph(t=2)


@pytest.fixture(scope="session")
def kernel_graph_t2():
    """Kernel test graph with t=2 (explicit small separating set)."""
    return synthetic.kernel_test_graph(t=2)


# ----------------------------------------------------------------------
# Constructed routings (session scoped)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def kernel_on_cycle():
    """Kernel routing on a 12-cycle (t = 1)."""
    graph = generators.cycle_graph(12)
    return kernel_routing(graph)


@pytest.fixture(scope="session")
def kernel_on_kernel_graph(kernel_graph_t2):
    """Kernel routing on the synthetic kernel test graph (t = 2)."""
    return kernel_routing(kernel_graph_t2, t=2)


@pytest.fixture(scope="session")
def circular_on_flower(flower_t2_k5):
    """Circular routing on the t=2 flower graph using the designated concentrator."""
    graph, flowers = flower_t2_k5
    return circular_routing(graph, t=2, concentrator=flowers)


@pytest.fixture(scope="session")
def tricircular_on_flower(flower_t1_k15):
    """Tri-circular routing on the t=1 flower graph (K = 15)."""
    graph, flowers = flower_t1_k15
    return tricircular_routing(graph, t=1, concentrator=flowers)


@pytest.fixture(scope="session")
def bipolar_uni_on_two_trees(two_trees_t2):
    """Unidirectional bipolar routing on the t=2 two-trees graph."""
    graph, r1, r2 = two_trees_t2
    return unidirectional_bipolar_routing(graph, t=2, roots=(r1, r2))


@pytest.fixture(scope="session")
def bipolar_bi_on_two_trees(two_trees_t2):
    """Bidirectional bipolar routing on the t=2 two-trees graph."""
    graph, r1, r2 = two_trees_t2
    return bidirectional_bipolar_routing(graph, t=2, roots=(r1, r2))


@pytest.fixture(scope="session")
def circular_on_cycle():
    """Circular routing on a 12-cycle (t = 1, auto-found concentrator)."""
    graph = generators.cycle_graph(12)
    return circular_routing(graph)

"""Property-based round-trip tests for the serialisation layer."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Routing, kernel_routing, surviving_diameter
from repro.graphs.generators import gnp_random_graph, random_k_connected_graph
from repro.serialization import (
    decode_node,
    encode_node,
    graph_from_dict,
    graph_to_dict,
    routing_from_dict,
    routing_to_dict,
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

node_labels = st.recursive(
    st.one_of(
        st.integers(min_value=-10 ** 6, max_value=10 ** 6),
        st.text(max_size=12),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=4,
)


class TestNodeLabelRoundtrip:
    @SETTINGS
    @given(node_labels)
    def test_roundtrip(self, label):
        assert decode_node(encode_node(label)) == label


class TestGraphRoundtrip:
    @SETTINGS
    @given(
        st.integers(min_value=0, max_value=18),
        st.floats(min_value=0.0, max_value=0.6),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_random_graph_roundtrip(self, n, p, seed):
        graph = gnp_random_graph(n, p, seed=seed)
        assert graph_from_dict(graph_to_dict(graph)) == graph


class TestRoutingRoundtrip:
    @SETTINGS
    @given(
        st.integers(min_value=8, max_value=14),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_kernel_routing_roundtrip_preserves_surviving_diameter(self, n, seed):
        graph = random_k_connected_graph(n, 2, seed=seed)
        result = kernel_routing(graph)
        restored = routing_from_dict(routing_to_dict(result.routing))
        nodes = graph.nodes()
        fault = {nodes[seed % len(nodes)]}
        assert surviving_diameter(restored.graph, restored, fault) == surviving_diameter(
            graph, result.routing, fault
        )

    @SETTINGS
    @given(
        st.integers(min_value=5, max_value=12),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_edge_routing_roundtrip_is_exact(self, n, seed):
        graph = random_k_connected_graph(n, 2, seed=seed)
        routing = Routing(graph, name="edges")
        routing.add_all_edge_routes()
        restored = routing_from_dict(routing_to_dict(routing))
        assert set(restored.pairs()) == set(routing.pairs())
        for pair in routing.pairs():
            assert restored.get_route(*pair) == routing.get_route(*pair)

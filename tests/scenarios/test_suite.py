"""Scenario-suite runner: determinism, worker independence, bounded rows."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.simulation import CampaignResult, DecisionCampaignResult
from repro.scenarios import parse_scenario, run_scenario_suite

#: Small, fast-to-build scenarios used across the suite tests.
SMALL_SCENARIOS = [
    "hypercube:d=3/kernel/sizes:1,2",
    "petersen/kernel/exhaustive:f=1",
    "circulant:n=12,offsets=1+2/kernel/random:p=0.1",
]


def _rows(scenarios, **kwargs):
    return [row.as_row() for row in run_scenario_suite(scenarios, **kwargs)]


class TestSuiteBasics:
    def test_one_row_per_campaign(self):
        rows = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0)
        # sizes:1,2 -> 2 rows; exhaustive:f=1 -> sizes 0 and 1 -> 2 rows;
        # random:p -> 1 row.
        assert len(rows) == 5
        assert [row.campaign.fault_size for row in rows] == [1, 2, 0, 1, 0]

    def test_rows_carry_scenario_metadata(self):
        (row,) = run_scenario_suite(["hypercube:d=3/kernel/sizes:2"], samples=4, seed=1)
        assert row.scenario == "hypercube:d=3/kernel/sizes:2"
        assert row.scheme == "kernel"
        assert row.nodes == 8 and row.edges == 12
        assert len(row.fingerprint) == 64
        assert row.campaign.bfs_strategy in ("batched", "per-source")
        flat = row.as_row()
        assert flat["scenario"] == row.scenario
        assert flat["fingerprint"] == row.fingerprint[:12]

    def test_same_seed_same_rows(self):
        first = _rows(SMALL_SCENARIOS, samples=6, seed=9)
        second = _rows(SMALL_SCENARIOS, samples=6, seed=9)
        assert first == second

    def test_different_seed_changes_sampled_batteries(self):
        from repro.scenarios.suite import _expand_tasks
        from repro.scenarios import as_scenarios

        scenarios = as_scenarios(["circulant:n=16,offsets=1+2/kernel/sizes:3"])
        pool = list(range(16))
        tasks_a, _ = _expand_tasks(scenarios, 20, 1, 32, None)
        tasks_b, _ = _expand_tasks(scenarios, 20, 2, 32, None)
        battery_a = [fs.nodes() for task in tasks_a for fs in task.materialise(pool)]
        battery_b = [fs.nodes() for task in tasks_b for fs in task.materialise(pool)]
        assert len(battery_a) == len(battery_b) == 20
        assert battery_a != battery_b

    def test_exhaustive_rows_cover_all_sets(self):
        rows = run_scenario_suite(["petersen/kernel/exhaustive:f=1"], samples=3, seed=0)
        assert [row.campaign.samples for row in rows] == [1, 10]

    def test_scenario_values_and_strings_mix(self):
        scenario = parse_scenario("hypercube:d=3/kernel/sizes:1")
        rows = run_scenario_suite([scenario, "petersen/kernel/sizes:1"], samples=4, seed=0)
        assert len(rows) == 2

    def test_empty_suite(self):
        assert run_scenario_suite([], samples=5, seed=0) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_scenario_suite(SMALL_SCENARIOS, samples=0)
        with pytest.raises(ValueError):
            run_scenario_suite(SMALL_SCENARIOS, workers=0)


class TestBoundedSuite:
    def test_bounded_rows_are_decisions(self):
        rows = run_scenario_suite(
            ["hypercube:d=3/kernel/sizes:1,2"], samples=8, seed=3, bound=4
        )
        for row in rows:
            assert isinstance(row.campaign, DecisionCampaignResult)
            assert row.campaign.bound == 4

    def test_bounded_and_exact_agree_on_violations(self):
        """Decision rows flag a violation iff the exact row exceeds the bound."""
        specs = ["cycle:n=16/kernel/sizes:2,3"]
        exact = run_scenario_suite(specs, samples=12, seed=5)
        bounded = run_scenario_suite(specs, samples=12, seed=5, bound=4)
        for exact_row, bounded_row in zip(exact, bounded):
            assert isinstance(exact_row.campaign, CampaignResult)
            # max_diameter tracks finite diameters only; disconnecting sets
            # (inf) violate any finite bound too.
            exceeded = (
                exact_row.campaign.max_diameter > 4
                or exact_row.campaign.disconnected_fraction > 0
            )
            assert bounded_row.campaign.holds == (not exceeded)


class TestWorkerIndependence:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=st.sampled_from(SMALL_SCENARIOS),
        samples=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        bound=st.sampled_from([None, 3, 4.0]),
        chunk_size=st.sampled_from([2, 5, 32]),
    )
    def test_suite_rows_identical_for_1_vs_4_workers(
        self, spec, samples, seed, bound, chunk_size
    ):
        """Suite rows are a pure function of (scenarios, samples, seed, bound)."""
        sequential = _rows(
            [spec], samples=samples, seed=seed, bound=bound, chunk_size=chunk_size
        )
        parallel = _rows(
            [spec],
            samples=samples,
            seed=seed,
            bound=bound,
            chunk_size=chunk_size,
            workers=4,
        )
        assert sequential == parallel

    def test_multi_scenario_suite_identical_for_1_vs_4_workers(self):
        sequential = _rows(SMALL_SCENARIOS, samples=10, seed=11)
        parallel = _rows(SMALL_SCENARIOS, samples=10, seed=11, workers=4)
        assert sequential == parallel


class TestSuiteSeedIndependence:
    def test_repeated_sizes_draw_independent_batteries(self):
        """sizes:2,2 must not evaluate the same battery twice (seed tags
        include the campaign position, mirroring sweep_fault_sizes)."""
        from repro.scenarios import as_scenarios
        from repro.scenarios.suite import _expand_tasks

        scenarios = as_scenarios(["circulant:n=16,offsets=1+2/kernel/sizes:2,2"])
        tasks, campaigns = _expand_tasks(scenarios, 20, 0, 32, None)
        assert len(campaigns) == 2
        pool = list(range(16))
        batteries = {}
        for task in tasks:
            batteries.setdefault(task.campaign_key, []).extend(
                fs.nodes() for fs in task.materialise(pool)
            )
        first, second = batteries[(0, 0)], batteries[(0, 1)]
        assert len(first) == len(second) == 20
        assert first != second

    def test_repeated_scenarios_draw_independent_batteries(self):
        from repro.scenarios import as_scenarios
        from repro.scenarios.suite import _expand_tasks

        spec = "circulant:n=16,offsets=1+2/kernel/sizes:2"
        scenarios = as_scenarios([spec, spec])
        tasks, _ = _expand_tasks(scenarios, 20, 0, 32, None)
        pool = list(range(16))
        batteries = {}
        for task in tasks:
            batteries.setdefault(task.campaign_key, []).extend(
                fs.nodes() for fs in task.materialise(pool)
            )
        assert batteries[(0, 0)] != batteries[(1, 0)]


class TestRecordRoundTrip:
    def test_scenario_rows_round_trip_through_records(self):
        for bound in (None, 4):
            rows = run_scenario_suite(SMALL_SCENARIOS, samples=5, seed=2, bound=bound)
            for row in rows:
                from repro.scenarios import ScenarioRow

                restored = ScenarioRow.from_record(row.record())
                assert restored.as_row() == row.as_row()
                assert restored.fingerprint == row.fingerprint
                assert restored.campaign.samples == row.campaign.samples

    def test_records_fit_the_unified_frame(self):
        from repro.results import result_frame

        rows = run_scenario_suite(SMALL_SCENARIOS, samples=5, seed=2)
        frame = result_frame(row.record() for row in rows)
        assert len(frame) == len(rows)
        assert set(frame.column("source")) == {"suite"}
        assert all(fp is not None for fp in frame.column("fingerprint"))


class TestRealisedFaultSizes:
    def test_random_p_rows_surface_realised_sizes(self):
        (row,) = run_scenario_suite(
            ["circulant:n=12,offsets=1+2/kernel/random:p=0.3"], samples=20, seed=4
        )
        campaign = row.campaign
        assert campaign.fault_size == 0  # nominal
        assert campaign.faults_max >= 1  # p=0.3 over 12 nodes, 20 samples
        assert campaign.faults_min <= campaign.faults_mean <= campaign.faults_max
        flat = row.as_row()
        assert flat["faults"] == f"{campaign.faults_min}..{campaign.faults_max}"
        assert flat["mean_faults"] == round(campaign.faults_mean, 2)

    def test_fixed_size_rows_keep_plain_faults_column(self):
        (row,) = run_scenario_suite(["hypercube:d=3/kernel/sizes:2"], samples=5, seed=0)
        assert row.campaign.faults_min == row.campaign.faults_max == 2
        assert row.as_row()["faults"] == 2
        assert "mean_faults" not in row.as_row()


class TestSuiteStoreResume:
    def _store(self, tmp_path, scenarios, samples, seed, bound=None):
        from repro.results import ResultStore
        from repro.scenarios import suite_manifest

        run = suite_manifest(scenarios, samples, seed, bound)
        return ResultStore.open(str(tmp_path / "rows.jsonl"), run)

    def test_store_records_one_row_per_campaign(self, tmp_path):
        with self._store(tmp_path, SMALL_SCENARIOS, 6, 0) as store:
            rows = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0, store=store)
            assert len(store) == len(rows) == 5

    def test_full_store_short_circuits_everything(self, tmp_path, monkeypatch):
        with self._store(tmp_path, SMALL_SCENARIOS, 6, 0) as store:
            expected = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0, store=store)
        # Re-running against the complete store must not evaluate any task
        # nor build any scenario.
        from repro.scenarios import suite as suite_module

        def fail_eval(task):  # pragma: no cover - must not run
            raise AssertionError("task evaluated during a fully-resumed run")

        monkeypatch.setattr(suite_module, "_eval_suite_task", fail_eval)
        build_calls = []
        original_build = suite_module.Scenario.build
        monkeypatch.setattr(
            suite_module.Scenario,
            "build",
            lambda self: build_calls.append(self) or original_build(self),
        )
        with self._store(tmp_path, SMALL_SCENARIOS, 6, 0) as store:
            resumed = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0, store=store)
        assert build_calls == []
        assert [row.as_row() for row in resumed] == [row.as_row() for row in expected]

    def test_partial_store_recomputes_only_missing_rows(self, tmp_path, monkeypatch):
        from repro.results import ResultStore
        from repro.scenarios import suite_manifest

        expected = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0)
        path = tmp_path / "rows.jsonl"
        run = suite_manifest(SMALL_SCENARIOS, 6, 0, None)
        with ResultStore.open(str(path), run) as store:
            rows = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0, store=store)
        full_text = path.read_text()
        # Keep the manifest plus the first two rows: simulates a kill after
        # two campaigns finished.
        lines = full_text.splitlines(keepends=True)
        path.write_text("".join(lines[:3]))

        from repro.scenarios import suite as suite_module

        evaluated = []
        original_eval = suite_module._eval_suite_task

        def counting_eval(task):
            evaluated.append(task.campaign_key)
            return original_eval(task)

        monkeypatch.setattr(suite_module, "_eval_suite_task", counting_eval)
        with ResultStore.open(str(path), run) as store:
            resumed = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0, store=store)
        # The two stored campaigns were skipped...
        assert (0, 0) not in evaluated
        assert (0, 1) not in evaluated
        assert evaluated  # ...and the remaining ones genuinely ran.
        # Rows and the store file match the uninterrupted run exactly.
        assert [row.as_row() for row in resumed] == [row.as_row() for row in rows]
        assert [row.as_row() for row in resumed] == [row.as_row() for row in expected]
        assert path.read_text() == full_text

    def test_repeated_scenarios_get_distinct_keys(self, tmp_path):
        from repro.scenarios import suite_row_keys, as_scenarios

        spec = "hypercube:d=3/kernel/sizes:1"
        keys = suite_row_keys(as_scenarios([spec, spec]))
        assert keys[0] != keys[1]
        with self._store(tmp_path, [spec, spec], 4, 0) as store:
            rows = run_scenario_suite([spec, spec], samples=4, seed=0, store=store)
            assert len(store) == 2
        # The repeats drew independent batteries, as without a store.
        plain = run_scenario_suite([spec, spec], samples=4, seed=0)
        assert [row.as_row() for row in rows] == [row.as_row() for row in plain]

    def test_store_from_other_routing_rejected(self, tmp_path):
        from repro.results import ResultStore
        from repro.scenarios import suite_manifest

        specs = ["hypercube:d=3/kernel/sizes:1,2"]
        path = tmp_path / "rows.jsonl"
        run = suite_manifest(specs, 6, 0, None)
        with ResultStore.open(str(path), run) as store:
            run_scenario_suite(specs, samples=6, seed=0, store=store)
        # Corrupt the stored fingerprint of the first row, keep the second
        # missing so the scenario is partially complete and gets rebuilt.
        lines = path.read_text().splitlines(keepends=True)
        tampered = lines[1].replace(
            '"fingerprint":"', '"fingerprint":"0000'
        )
        path.write_text(lines[0] + tampered)
        with ResultStore.open(str(path), run) as store:
            with pytest.raises(RuntimeError, match="different construction"):
                run_scenario_suite(specs, samples=6, seed=0, store=store)


class TestStrategyAxisSuite:
    #: A two-strategy comparison grid where both constructions apply at
    #: every size (cycles accept kernel and circular at t=1).
    GRID = "cycle:n=10..12/kernel|circular/t=1/sizes:1"

    def _scenarios(self):
        from repro.scenarios import expand_grids

        return expand_grids([self.GRID])

    def test_split_runs_match_combined_run(self):
        """Battery seeds hash scenario identity, not suite position: the
        per-strategy halves of a comparison grid produce exactly the rows
        of the combined run (the substrate of store merging)."""
        from repro.scenarios import expand_grids

        combined = _rows(self._scenarios(), samples=6, seed=9)
        kernel = _rows(
            expand_grids(["cycle:n=10..12/kernel/t=1/sizes:1"]),
            samples=6,
            seed=9,
        )
        circular = _rows(
            expand_grids(["cycle:n=10..12/circular/t=1/sizes:1"]),
            samples=6,
            seed=9,
        )
        by_scenario = {row["scenario"]: row for row in kernel + circular}
        assert combined == [by_scenario[row["scenario"]] for row in combined]

    def test_strategy_axis_resume_is_byte_identical(self, tmp_path, monkeypatch):
        """Truncate a multi-strategy store mid-run, resume, and require the
        store and the rendered report to match the uninterrupted run
        byte for byte (the pytest mirror of CI's grid-smoke job)."""
        from repro.analysis import render_scaling_report
        from repro.results import ResultStore, result_frame
        from repro.scenarios import suite_manifest

        scenarios = self._scenarios()
        run = suite_manifest(scenarios, 6, 9, None)
        path = tmp_path / "rows.jsonl"
        with ResultStore.open(str(path), run) as store:
            full_rows = run_scenario_suite(
                scenarios, samples=6, seed=9, store=store
            )
        full_text = path.read_text()
        full_report = render_scaling_report(
            result_frame(row.record() for row in full_rows), run
        )
        assert " t=" in full_report  # strategy column groups present

        # Kill simulation: keep the manifest, two rows of the kernel half,
        # and half of a third line (a circular row still unwritten).
        lines = full_text.splitlines(keepends=True)
        path.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])

        evaluated = []
        from repro.scenarios import suite as suite_module

        original_eval = suite_module._eval_suite_task

        def counting_eval(task):
            evaluated.append(task.campaign_key)
            return original_eval(task)

        monkeypatch.setattr(suite_module, "_eval_suite_task", counting_eval)
        with ResultStore.open(str(path), run) as store:
            resumed_rows = run_scenario_suite(
                scenarios, samples=6, seed=9, store=store
            )
        resumed_report = render_scaling_report(
            result_frame(row.record() for row in resumed_rows), run
        )
        assert (0, 0) not in evaluated and (1, 0) not in evaluated
        assert evaluated  # the truncated tail genuinely re-ran
        assert path.read_text() == full_text
        assert resumed_report == full_report

    def test_inapplicable_scenarios_raise_without_opt_in(self):
        with pytest.raises(Exception, match="neighbourhood set"):
            run_scenario_suite(
                ["hypercube:d=3/circular/sizes:1"], samples=4, seed=0
            )

    def test_skip_inapplicable_never_swallows_graph_errors(self):
        # A malformed graph axis (cycle needs n >= 3) is a broken grid, not
        # an inapplicable strategy: it must raise even under the skip flag.
        with pytest.raises(Exception, match="at least three nodes"):
            run_scenario_suite(
                ["cycle:n=2/kernel/sizes:1"],
                samples=4,
                seed=0,
                skip_inapplicable=True,
            )

    def test_skip_inapplicable_accepts_per_scenario_eligibility(self):
        # An iterable of canonical strings restricts dropping: the eligible
        # scenario is dropped, an inapplicable one outside the set raises.
        eligible = "hypercube:d=3/circular/sizes:1"
        skipped = []
        rows = run_scenario_suite(
            [eligible, "hypercube:d=3/kernel/sizes:1"],
            samples=4,
            seed=0,
            skip_inapplicable=[eligible],
            skipped=skipped,
        )
        assert [row.scenario for row in rows] == ["hypercube:d=3/kernel/sizes:1"]
        assert len(skipped) == 1
        with pytest.raises(Exception, match="neighbourhood set"):
            run_scenario_suite(
                [eligible],
                samples=4,
                seed=0,
                skip_inapplicable=["some:other/scenario"],
            )

    def test_skip_inapplicable_drops_scenarios_and_reports_them(self):
        skipped = []
        rows = run_scenario_suite(
            [
                "hypercube:d=3/circular/sizes:1",
                "hypercube:d=3/kernel/sizes:1",
            ],
            samples=4,
            seed=0,
            skip_inapplicable=True,
            skipped=skipped,
        )
        assert [row.scenario for row in rows] == ["hypercube:d=3/kernel/sizes:1"]
        assert len(skipped) == 1
        scenario, reason = skipped[0]
        assert scenario.canonical() == "hypercube:d=3/circular/sizes:1"
        assert "neighbourhood set" in reason

    def test_skip_inapplicable_store_resume_stays_byte_identical(self, tmp_path):
        from repro.results import ResultStore
        from repro.scenarios import suite_manifest

        specs = [
            "hypercube:d=3/circular/sizes:1",
            "hypercube:d=3/kernel/sizes:1",
        ]
        run = suite_manifest(specs, 4, 0, None)
        path = tmp_path / "rows.jsonl"
        with ResultStore.open(str(path), run) as store:
            run_scenario_suite(
                specs, samples=4, seed=0, store=store, skip_inapplicable=True
            )
        full_text = path.read_text()
        # Resume against the complete store: the dropped scenario is
        # re-dropped (construction is deterministic) and nothing changes.
        with ResultStore.open(str(path), run) as store:
            resumed = run_scenario_suite(
                specs, samples=4, seed=0, store=store, skip_inapplicable=True
            )
        assert len(resumed) == 1
        assert path.read_text() == full_text

    def test_strategy_recorded_in_suite_records(self):
        rows = run_scenario_suite(
            self._scenarios(), samples=4, seed=0
        )
        strategies = {row.record()["strategy"] for row in rows}
        assert strategies == {"kernel", "circular"}


class TestSharedIndexPayload:
    def test_shared_payload_rows_match_rebuild_rows(self):
        shared = _rows(SMALL_SCENARIOS, samples=8, seed=3, workers=2)
        rebuilt = _rows(
            SMALL_SCENARIOS, samples=8, seed=3, workers=2, share_index=False
        )
        sequential = _rows(SMALL_SCENARIOS, samples=8, seed=3)
        assert shared == rebuilt == sequential

    def test_initializer_seeds_worker_cache(self):
        from repro.scenarios import suite as suite_module

        payload = {"spec-a": (object(), "fp-a")}
        suite_module._init_suite_worker(payload)
        try:
            assert suite_module._SCENARIO_CACHE["spec-a"] == payload["spec-a"]
        finally:
            suite_module._SCENARIO_CACHE.clear()

    def test_initializer_none_clears_cache(self):
        from repro.scenarios import suite as suite_module

        suite_module._cache_workload("stale", (None, "fp"))
        suite_module._init_suite_worker(None)
        assert suite_module._SCENARIO_CACHE == {}


class TestScenarioCache:
    def test_cache_is_bounded(self):
        from repro.scenarios import suite as suite_module

        suite_module._SCENARIO_CACHE.clear()
        for i in range(suite_module._SCENARIO_CACHE_LIMIT + 5):
            suite_module._cache_workload(f"spec-{i}", (None, f"fp-{i}"))
        assert (
            len(suite_module._SCENARIO_CACHE)
            == suite_module._SCENARIO_CACHE_LIMIT
        )
        # FIFO: the oldest entries were evicted, the newest survive.
        assert f"spec-{suite_module._SCENARIO_CACHE_LIMIT + 4}" in (
            suite_module._SCENARIO_CACHE
        )
        assert "spec-0" not in suite_module._SCENARIO_CACHE
        suite_module._SCENARIO_CACHE.clear()

    def test_worker_reset_clears_cache(self):
        from repro.scenarios import suite as suite_module

        suite_module._cache_workload("spec-x", (None, "fp"))
        suite_module._reset_worker_cache()
        assert suite_module._SCENARIO_CACHE == {}


class TestGreedyProbe:
    def test_greedy_adds_one_sample_per_sizes_campaign(self):
        plain = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0)
        augmented = run_scenario_suite(
            SMALL_SCENARIOS, samples=6, seed=0, greedy=True
        )
        for before, after in zip(plain, augmented):
            is_sizes_probe = (
                "sizes:" in before.scenario and before.campaign.fault_size > 0
            )
            if is_sizes_probe:
                assert after.campaign.samples == before.campaign.samples + 1
            else:
                # exhaustive / random-p campaigns are untouched by --greedy.
                assert after.campaign.samples == before.campaign.samples

    def test_greedy_rows_carry_candidate_limit(self):
        rows = run_scenario_suite(
            ["hypercube:d=3/kernel/sizes:1,2"], samples=4, seed=2,
            greedy=True, candidate_limit=6,
        )
        for row in rows:
            record = row.record()
            assert record["candidate_limit"] == 6
            assert record["backend"] in ("bitset", "numpy")
        plain = run_scenario_suite(
            ["hypercube:d=3/kernel/sizes:1,2"], samples=4, seed=2
        )
        for row in plain:
            assert row.record()["candidate_limit"] is None

    def test_greedy_worst_at_least_sampled_worst(self):
        plain = run_scenario_suite(
            ["circulant:n=12,offsets=1+2/kernel/sizes:2"], samples=5, seed=1
        )
        augmented = run_scenario_suite(
            ["circulant:n=12,offsets=1+2/kernel/sizes:2"], samples=5, seed=1,
            greedy=True,
        )
        assert (
            augmented[0].campaign.max_diameter >= plain[0].campaign.max_diameter
        )

    def test_greedy_rows_deterministic_across_workers(self):
        kwargs = dict(samples=6, seed=5, greedy=True, candidate_limit=5)
        sequential = _rows(SMALL_SCENARIOS, **kwargs)
        parallel = _rows(SMALL_SCENARIOS, workers=2, **kwargs)
        assert sequential == parallel

    def test_greedy_store_resume_is_byte_identical(self, tmp_path):
        from repro.results import ResultStore
        from repro.scenarios.suite import suite_manifest

        scenarios = ["hypercube:d=3/kernel/sizes:1,2"]
        run = suite_manifest(scenarios, 4, 3, greedy=True, candidate_limit=6)
        full_path = tmp_path / "full.jsonl"
        with ResultStore.open(str(full_path), run) as store:
            run_scenario_suite(
                scenarios, samples=4, seed=3, store=store,
                greedy=True, candidate_limit=6,
            )
        # Truncate to the manifest plus the first row and resume.
        resumed_path = tmp_path / "resumed.jsonl"
        lines = full_path.read_text().splitlines(keepends=True)
        resumed_path.write_text("".join(lines[:2]))
        with ResultStore.open(str(resumed_path), run) as store:
            run_scenario_suite(
                scenarios, samples=4, seed=3, store=store,
                greedy=True, candidate_limit=6,
            )
        assert resumed_path.read_text() == full_path.read_text()

    def test_greedy_manifest_parameters_gate_resume(self, tmp_path):
        from repro.results import ResultStore, ResultStoreError
        from repro.scenarios.suite import suite_manifest

        scenarios = ["hypercube:d=3/kernel/sizes:1"]
        greedy_run = suite_manifest(scenarios, 4, 0, greedy=True)
        plain_run = suite_manifest(scenarios, 4, 0)
        assert greedy_run != plain_run
        path = tmp_path / "store.jsonl"
        ResultStore.open(str(path), greedy_run).close()
        with pytest.raises(ResultStoreError, match="different .*run"):
            ResultStore.open(str(path), plain_run)

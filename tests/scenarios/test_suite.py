"""Scenario-suite runner: determinism, worker independence, bounded rows."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.simulation import CampaignResult, DecisionCampaignResult
from repro.scenarios import parse_scenario, run_scenario_suite

#: Small, fast-to-build scenarios used across the suite tests.
SMALL_SCENARIOS = [
    "hypercube:d=3/kernel/sizes:1,2",
    "petersen/kernel/exhaustive:f=1",
    "circulant:n=12,offsets=1+2/kernel/random:p=0.1",
]


def _rows(scenarios, **kwargs):
    return [row.as_row() for row in run_scenario_suite(scenarios, **kwargs)]


class TestSuiteBasics:
    def test_one_row_per_campaign(self):
        rows = run_scenario_suite(SMALL_SCENARIOS, samples=6, seed=0)
        # sizes:1,2 -> 2 rows; exhaustive:f=1 -> sizes 0 and 1 -> 2 rows;
        # random:p -> 1 row.
        assert len(rows) == 5
        assert [row.campaign.fault_size for row in rows] == [1, 2, 0, 1, 0]

    def test_rows_carry_scenario_metadata(self):
        (row,) = run_scenario_suite(["hypercube:d=3/kernel/sizes:2"], samples=4, seed=1)
        assert row.scenario == "hypercube:d=3/kernel/sizes:2"
        assert row.scheme == "kernel"
        assert row.nodes == 8 and row.edges == 12
        assert len(row.fingerprint) == 64
        assert row.campaign.bfs_strategy in ("batched", "per-source")
        flat = row.as_row()
        assert flat["scenario"] == row.scenario
        assert flat["fingerprint"] == row.fingerprint[:12]

    def test_same_seed_same_rows(self):
        first = _rows(SMALL_SCENARIOS, samples=6, seed=9)
        second = _rows(SMALL_SCENARIOS, samples=6, seed=9)
        assert first == second

    def test_different_seed_changes_sampled_batteries(self):
        from repro.scenarios.suite import _expand_tasks
        from repro.scenarios import as_scenarios

        scenarios = as_scenarios(["circulant:n=16,offsets=1+2/kernel/sizes:3"])
        pool = list(range(16))
        tasks_a, _ = _expand_tasks(scenarios, 20, 1, 32, None)
        tasks_b, _ = _expand_tasks(scenarios, 20, 2, 32, None)
        battery_a = [fs.nodes() for task in tasks_a for fs in task.materialise(pool)]
        battery_b = [fs.nodes() for task in tasks_b for fs in task.materialise(pool)]
        assert len(battery_a) == len(battery_b) == 20
        assert battery_a != battery_b

    def test_exhaustive_rows_cover_all_sets(self):
        rows = run_scenario_suite(["petersen/kernel/exhaustive:f=1"], samples=3, seed=0)
        assert [row.campaign.samples for row in rows] == [1, 10]

    def test_scenario_values_and_strings_mix(self):
        scenario = parse_scenario("hypercube:d=3/kernel/sizes:1")
        rows = run_scenario_suite([scenario, "petersen/kernel/sizes:1"], samples=4, seed=0)
        assert len(rows) == 2

    def test_empty_suite(self):
        assert run_scenario_suite([], samples=5, seed=0) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_scenario_suite(SMALL_SCENARIOS, samples=0)
        with pytest.raises(ValueError):
            run_scenario_suite(SMALL_SCENARIOS, workers=0)


class TestBoundedSuite:
    def test_bounded_rows_are_decisions(self):
        rows = run_scenario_suite(
            ["hypercube:d=3/kernel/sizes:1,2"], samples=8, seed=3, bound=4
        )
        for row in rows:
            assert isinstance(row.campaign, DecisionCampaignResult)
            assert row.campaign.bound == 4

    def test_bounded_and_exact_agree_on_violations(self):
        """Decision rows flag a violation iff the exact row exceeds the bound."""
        specs = ["cycle:n=16/kernel/sizes:2,3"]
        exact = run_scenario_suite(specs, samples=12, seed=5)
        bounded = run_scenario_suite(specs, samples=12, seed=5, bound=4)
        for exact_row, bounded_row in zip(exact, bounded):
            assert isinstance(exact_row.campaign, CampaignResult)
            # max_diameter tracks finite diameters only; disconnecting sets
            # (inf) violate any finite bound too.
            exceeded = (
                exact_row.campaign.max_diameter > 4
                or exact_row.campaign.disconnected_fraction > 0
            )
            assert bounded_row.campaign.holds == (not exceeded)


class TestWorkerIndependence:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=st.sampled_from(SMALL_SCENARIOS),
        samples=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        bound=st.sampled_from([None, 3, 4.0]),
        chunk_size=st.sampled_from([2, 5, 32]),
    )
    def test_suite_rows_identical_for_1_vs_4_workers(
        self, spec, samples, seed, bound, chunk_size
    ):
        """Suite rows are a pure function of (scenarios, samples, seed, bound)."""
        sequential = _rows(
            [spec], samples=samples, seed=seed, bound=bound, chunk_size=chunk_size
        )
        parallel = _rows(
            [spec],
            samples=samples,
            seed=seed,
            bound=bound,
            chunk_size=chunk_size,
            workers=4,
        )
        assert sequential == parallel

    def test_multi_scenario_suite_identical_for_1_vs_4_workers(self):
        sequential = _rows(SMALL_SCENARIOS, samples=10, seed=11)
        parallel = _rows(SMALL_SCENARIOS, samples=10, seed=11, workers=4)
        assert sequential == parallel


class TestSuiteSeedIndependence:
    def test_repeated_sizes_draw_independent_batteries(self):
        """sizes:2,2 must not evaluate the same battery twice (seed tags
        include the campaign position, mirroring sweep_fault_sizes)."""
        from repro.scenarios import as_scenarios
        from repro.scenarios.suite import _expand_tasks

        scenarios = as_scenarios(["circulant:n=16,offsets=1+2/kernel/sizes:2,2"])
        tasks, campaigns = _expand_tasks(scenarios, 20, 0, 32, None)
        assert len(campaigns) == 2
        pool = list(range(16))
        batteries = {}
        for task in tasks:
            batteries.setdefault(task.campaign_key, []).extend(
                fs.nodes() for fs in task.materialise(pool)
            )
        first, second = batteries[(0, 0)], batteries[(0, 1)]
        assert len(first) == len(second) == 20
        assert first != second

    def test_repeated_scenarios_draw_independent_batteries(self):
        from repro.scenarios import as_scenarios
        from repro.scenarios.suite import _expand_tasks

        spec = "circulant:n=16,offsets=1+2/kernel/sizes:2"
        scenarios = as_scenarios([spec, spec])
        tasks, _ = _expand_tasks(scenarios, 20, 0, 32, None)
        pool = list(range(16))
        batteries = {}
        for task in tasks:
            batteries.setdefault(task.campaign_key, []).extend(
                fs.nodes() for fs in task.materialise(pool)
            )
        assert batteries[(0, 0)] != batteries[(1, 0)]


class TestScenarioCache:
    def test_cache_is_bounded(self):
        from repro.scenarios import suite as suite_module

        suite_module._SCENARIO_CACHE.clear()
        for i in range(suite_module._SCENARIO_CACHE_LIMIT + 5):
            suite_module._cache_workload(f"spec-{i}", (None, f"fp-{i}"))
        assert (
            len(suite_module._SCENARIO_CACHE)
            == suite_module._SCENARIO_CACHE_LIMIT
        )
        # FIFO: the oldest entries were evicted, the newest survive.
        assert f"spec-{suite_module._SCENARIO_CACHE_LIMIT + 4}" in (
            suite_module._SCENARIO_CACHE
        )
        assert "spec-0" not in suite_module._SCENARIO_CACHE
        suite_module._SCENARIO_CACHE.clear()

    def test_worker_reset_clears_cache(self):
        from repro.scenarios import suite as suite_module

        suite_module._cache_workload("spec-x", (None, "fp"))
        suite_module._reset_worker_cache()
        assert suite_module._SCENARIO_CACHE == {}

"""Grid-spec parsing: ranges, edge cases, canonical round-tripping, expansion."""

import pytest

from repro.scenarios import (
    Range,
    ScenarioGrid,
    expand_grids,
    parse_grid,
    parse_scenario,
)


class TestRangeParsing:
    def test_simple_grid(self):
        grid = parse_grid("hypercube:d=3..5/kernel/t=1..2/sizes:1-3")
        assert grid.family == "hypercube"
        assert dict(grid.graph_values)["d"] == Range(3, 5)
        assert grid.t == Range(1, 2)
        assert grid.faults.sizes == (1, 2, 3)
        assert len(grid) == 6

    def test_plain_scenario_is_one_point_grid(self):
        grid = parse_grid("hypercube:d=4/kernel/sizes:1,2")
        assert len(grid) == 1
        (scenario,) = grid.scenarios()
        assert scenario == parse_scenario("hypercube:d=4/kernel/sizes:1,2")

    def test_single_point_range_collapses(self):
        grid = parse_grid("hypercube:d=3..3/kernel/t=2..2")
        assert dict(grid.graph_values)["d"] == 3
        assert grid.t == 2
        assert len(grid) == 1
        assert grid.canonical() == "hypercube:d=3/kernel/t=2/sizes:1,2,3"

    def test_reversed_range_rejected(self):
        with pytest.raises(ValueError, match="reversed"):
            parse_grid("hypercube:d=5..3/kernel")
        with pytest.raises(ValueError, match="reversed"):
            parse_grid("hypercube:d=3/kernel/t=4..2")
        with pytest.raises(ValueError, match="reversed"):
            parse_grid("hypercube:d=3/kernel/sizes:5-3")

    @pytest.mark.parametrize(
        "spec",
        [
            "hypercube:d=3../kernel",
            "hypercube:d=..5/kernel",
            "hypercube:d=3...5/kernel",
            "hypercube:d=3..x/kernel",
            "hypercube:d=../kernel",
            "hypercube:d=3/kernel/t=1..",
            "hypercube:d=3/kernel/t=..2",
        ],
    )
    def test_malformed_range_forms_rejected(self, spec):
        with pytest.raises(ValueError, match="malformed"):
            parse_grid(spec)

    def test_positional_range_rejected(self):
        with pytest.raises(ValueError, match="named form"):
            parse_grid("hypercube:3..5/kernel")

    def test_range_on_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_grid("hypercube:q=3..5/kernel")

    def test_range_on_float_parameter_rejected(self):
        # gnp's p is a float: sweeping it with an int range must fail loudly
        # rather than produce a nonsense axis.
        with pytest.raises(ValueError, match="malformed|only integer"):
            parse_grid("gnp:p=0.1..0.5/kernel")

    def test_duplicate_range_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            parse_grid("hypercube:d=3..4,d=5..6/kernel")

    def test_range_constructor_requires_ascending(self):
        with pytest.raises(ValueError):
            Range(4, 4)
        with pytest.raises(ValueError):
            Range(5, 3)

    def test_sizes_mixed_list_and_range(self):
        grid = parse_grid("petersen/kernel/sizes:1,3-5")
        assert grid.faults.sizes == (1, 3, 4, 5)

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            parse_grid("hypercube:d=3/t=-1")

    def test_empty_grid_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_grid("  ")


class TestStrategyAxis:
    def test_strategy_set_parses(self):
        grid = parse_grid("hypercube:d=3..5/kernel|circular/t=1..2/sizes:1-3")
        assert grid.strategy == ("kernel", "circular")
        assert grid.strategies() == ("kernel", "circular")
        assert len(grid) == 12
        assert grid.axes() == [
            ("d", (3, 4, 5)),
            ("strategy", ("kernel", "circular")),
            ("t", (1, 2)),
        ]

    def test_single_strategy_stays_plain(self):
        grid = parse_grid("hypercube:d=3..4/kernel")
        assert grid.strategy == "kernel"
        assert grid.strategies() == ("kernel",)
        assert ("strategy", ("kernel",)) not in grid.axes()

    def test_expansion_order_strategy_above_t(self):
        grid = parse_grid("hypercube:d=3..4/kernel|circular/t=1..2/sizes:1")
        assert [s.canonical() for s in grid.scenarios()][:4] == [
            "hypercube:d=3/kernel/t=1/sizes:1",
            "hypercube:d=3/kernel/t=2/sizes:1",
            "hypercube:d=3/circular/t=1/sizes:1",
            "hypercube:d=3/circular/t=2/sizes:1",
        ]

    def test_written_order_preserved(self):
        grid = parse_grid("cycle:n=10/circular|kernel/sizes:1")
        assert grid.strategy == ("circular", "kernel")
        assert [s.strategy for s in grid.scenarios()] == ["circular", "kernel"]

    def test_auto_allowed_as_member(self):
        grid = parse_grid("cycle:n=10/auto|kernel/sizes:1")
        assert grid.strategy == ("auto", "kernel")

    def test_unknown_member_rejected(self):
        with pytest.raises(ValueError, match="unknown routing strategy"):
            parse_grid("cycle:n=10/kernel|bogus/sizes:1")

    def test_duplicate_member_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            parse_grid("cycle:n=10/kernel|circular|kernel/sizes:1")

    def test_empty_member_rejected(self):
        with pytest.raises(ValueError, match="empty member"):
            parse_grid("cycle:n=10/kernel|/sizes:1")

    def test_duplicate_strategy_segments_rejected(self):
        with pytest.raises(ValueError, match="duplicate strategy"):
            parse_grid("cycle:n=10/kernel|circular/auto/sizes:1")

    def test_one_member_set_collapses_to_plain_strategy(self):
        grid = parse_grid("cycle:n=10/kernel/sizes:1")
        assert grid == parse_grid("cycle:n=10/kernel/sizes:1")
        assert grid.strategy == "kernel"

    def test_scenario_parser_rejects_strategy_sets(self):
        with pytest.raises(ValueError, match="grid syntax"):
            parse_scenario("cycle:n=10/kernel|circular/sizes:1")

    def test_strategy_set_canonical_round_trip(self):
        grid = parse_grid("hypercube:d=3..5/kernel|circular/t=1..2/sizes:1-3")
        assert (
            grid.canonical()
            == "hypercube:d=3..5/kernel|circular/t=1..2/sizes:1,2,3"
        )
        assert parse_grid(grid.canonical()) == grid


class TestCanonicalRoundTrip:
    SPECS = [
        "hypercube:d=3..5/kernel/t=1..2/sizes:1-3",
        "hypercube:d=3..8/kernel",
        "hypercube:d=3..5/kernel|circular/t=1..2/sizes:1-3",
        "cycle:n=10..12/circular|kernel/sizes:1",
        "circulant:n=12..16,offsets=1+2/kernel/random:p=0.1",
        "torus:rows=3..4,cols=4/circular",
        "petersen/kernel/exhaustive:f=2",
        "hypercube:d=4/auto/sizes:2",
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_parse_canonical_round_trip(self, spec):
        grid = parse_grid(spec)
        again = parse_grid(grid.canonical())
        assert again == grid
        assert again.canonical() == grid.canonical()

    def test_canonical_preserves_ranges(self):
        grid = parse_grid("hypercube:d=3..5/kernel/t=1..2/sizes:1-3")
        assert grid.canonical() == "hypercube:d=3..5/kernel/t=1..2/sizes:1,2,3"

    def test_one_point_grid_canonical_matches_scenario(self):
        spec = "hypercube:d=4/kernel/t=2/sizes:1,2"
        assert parse_grid(spec).canonical() == parse_scenario(spec).canonical()


class TestExpansion:
    def test_expansion_order_t_varies_fastest(self):
        grid = parse_grid("hypercube:d=3..4/kernel/t=1..2/sizes:1")
        assert [s.canonical() for s in grid.scenarios()] == [
            "hypercube:d=3/kernel/t=1/sizes:1",
            "hypercube:d=3/kernel/t=2/sizes:1",
            "hypercube:d=4/kernel/t=1/sizes:1",
            "hypercube:d=4/kernel/t=2/sizes:1",
        ]

    def test_multi_parameter_product(self):
        grid = parse_grid("torus:rows=3..4,cols=4..5/circular")
        specs = [s.graph_spec for s in grid.scenarios()]
        assert specs == [
            "torus:rows=3,cols=4",
            "torus:rows=3,cols=5",
            "torus:rows=4,cols=4",
            "torus:rows=4,cols=5",
        ]

    def test_axes_listing(self):
        grid = parse_grid("hypercube:d=3..5/kernel/t=1..2")
        assert grid.axes() == [("d", (3, 4, 5)), ("t", (1, 2))]

    def test_expand_grids_mixes_grids_and_scenarios(self):
        scenarios = expand_grids(
            [
                "hypercube:d=3..4/kernel/sizes:1",
                parse_scenario("petersen/kernel/sizes:1"),
                parse_grid("cycle:n=10/kernel/sizes:1"),
            ]
        )
        assert [s.canonical() for s in scenarios] == [
            "hypercube:d=3/kernel/sizes:1",
            "hypercube:d=4/kernel/sizes:1",
            "petersen/kernel/sizes:1",
            "cycle:n=10/kernel/sizes:1",
        ]

    def test_grid_scenarios_build(self):
        grid = parse_grid("hypercube:d=3..4/kernel/t=1..2/sizes:1")
        for scenario in grid.scenarios():
            graph, result = scenario.build()
            assert result.t == scenario.t
            assert graph.number_of_nodes() in (8, 16)

    def test_grid_is_hashable_value(self):
        a = parse_grid("hypercube:d=3..5/kernel")
        b = parse_grid("hypercube:d=3..5/kernel/sizes:1,2,3")
        assert a == b
        assert hash(a) == hash(b)
        assert isinstance(a, ScenarioGrid)

"""Scenario spec parsing/formatting and graph-family registry coverage."""

from __future__ import annotations

import inspect

import pytest

from repro.core.builder import STRATEGIES
from repro.graphs import generators, synthetic
from repro.graphs.registry import (
    GRAPH_FAMILIES,
    canonical_graph_spec,
    parse_graph_spec,
)
from repro.scenarios import (
    DEFAULT_FAULT_MODEL,
    FaultModel,
    Scenario,
    as_scenarios,
    parse_scenario,
)


class TestGraphRegistry:
    def test_every_family_builds_at_defaults(self):
        for name, family in GRAPH_FAMILIES.items():
            graph = family.build()
            assert graph.number_of_nodes() > 0, name

    def test_positional_and_named_specs_agree(self):
        pairs = [
            ("hypercube:4", "hypercube:d=4"),
            ("circulant:16,1,2", "circulant:n=16,offsets=1+2"),
            ("grid:3,4", "grid:rows=3,cols=4"),
            ("gnp:20,0.2,3", "gnp:n=20,p=0.2,seed=3"),
            ("flower:2,5", "flower:t=2,k=5"),
        ]
        for positional, named in pairs:
            assert canonical_graph_spec(positional) == named
            assert parse_graph_spec(positional) == parse_graph_spec(named)

    def test_canonical_specs_are_fixed_points(self):
        for family in GRAPH_FAMILIES.values():
            canonical = family.example()
            assert canonical_graph_spec(canonical) == canonical

    def test_registry_covers_every_generator_export(self):
        """Every public ``*_graph`` generator backs some registered family."""
        builders = {family.builder for family in GRAPH_FAMILIES.values()}
        for module in (generators, synthetic):
            for name, value in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(value):
                    continue
                if value.__module__ != module.__name__:
                    continue
                if not name.endswith("_graph"):
                    continue
                assert value in builders, (
                    f"{module.__name__}.{name} is not reachable from the "
                    "graph-family registry"
                )

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            parse_graph_spec("klein-bottle:3")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_graph_spec("hypercube:q=4")

    def test_repeated_parameter_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            parse_graph_spec("hypercube:d=4,d=5")

    def test_positional_after_named_rejected(self):
        with pytest.raises(ValueError, match="after named"):
            parse_graph_spec("grid:rows=3,4")

    def test_too_many_positionals_rejected(self):
        with pytest.raises(ValueError, match="too many arguments"):
            parse_graph_spec("hypercube:3,4")


class TestScenarioRoundTrip:
    CANONICAL = [
        "hypercube:d=4/kernel/t=3/random:p=0.1",
        "circulant:n=24,offsets=1+2/kernel/sizes:1,2,3",
        "flower:t=2,k=9/circular/exhaustive:f=2",
        "petersen/auto/sizes:1,2,3",
        "two-trees:t=1/bipolar-uni/sizes:1",
    ]

    @pytest.mark.parametrize("text", CANONICAL)
    def test_canonical_round_trip(self, text):
        scenario = parse_scenario(text)
        assert scenario.canonical() == text
        assert parse_scenario(scenario.canonical()) == scenario

    def test_defaults_fill_in(self):
        scenario = parse_scenario("petersen")
        assert scenario.strategy == "auto"
        assert scenario.t is None
        assert scenario.faults == DEFAULT_FAULT_MODEL

    def test_segments_are_order_free(self):
        a = parse_scenario("hypercube:d=4/kernel/t=3/random:p=0.1")
        b = parse_scenario("hypercube:d=4/random:p=0.1/t=3/kernel")
        assert a == b

    def test_graph_spec_is_canonicalised(self):
        scenario = parse_scenario("circulant:24,1,2/kernel")
        assert scenario.graph_spec == "circulant:n=24,offsets=1+2"

    def test_every_strategy_name_is_recognised(self):
        for strategy in STRATEGIES:
            scenario = parse_scenario(f"petersen/{strategy}")
            assert scenario.strategy == strategy

    def test_build_produces_fingerprinted_construction(self):
        graph, result = parse_scenario("hypercube:d=3/kernel").build()
        assert graph.number_of_nodes() == 8
        assert len(result.fingerprint()) == 64

    def test_as_scenarios_mixes_strings_and_values(self):
        values = as_scenarios(["petersen", Scenario("hypercube:d=3")])
        assert [s.graph_spec for s in values] == ["petersen", "hypercube:d=3"]


class TestScenarioErrors:
    def test_unknown_segment(self):
        with pytest.raises(ValueError, match="unrecognised scenario segment"):
            parse_scenario("petersen/zigzag")

    def test_duplicate_strategy(self):
        with pytest.raises(ValueError, match="duplicate strategy"):
            parse_scenario("petersen/kernel/circular")

    def test_duplicate_fault_model(self):
        with pytest.raises(ValueError, match="duplicate fault-model"):
            parse_scenario("petersen/sizes:1/sizes:2")

    def test_bad_t(self):
        with pytest.raises(ValueError, match="integer"):
            parse_scenario("petersen/t=x")

    def test_negative_t(self):
        with pytest.raises(ValueError, match="non-negative"):
            parse_scenario("petersen/t=-1")

    def test_bad_probability(self):
        with pytest.raises(ValueError, match=r"p must lie in \[0, 1\]"):
            parse_scenario("petersen/random:p=1.5")

    def test_empty_sizes(self):
        with pytest.raises(ValueError, match="at least one size"):
            parse_scenario("petersen/sizes:")

    def test_fault_model_variants(self):
        assert FaultModel.parse("sizes:2,4").sizes == (2, 4)
        assert FaultModel.parse("random:p=0.25").p == 0.25
        assert FaultModel.parse("exhaustive:f=3").max_faults == 3

"""Unit tests for the serving engine: views, deltas, LRU, batch queries."""

import pytest

from repro.core import build_routing
from repro.core.route_index import RouteIndex
from repro.exceptions import FaultModelError, ServingError
from repro.graphs import generators
from repro.serving import ServingEngine, compile_routing_artifact


@pytest.fixture(scope="module")
def case():
    graph = generators.circulant_graph(16, [1, 2])
    result = build_routing(graph, strategy="kernel")
    artifact = compile_routing_artifact(graph, result.routing, scheme=result.scheme)
    index = RouteIndex(graph, result.routing)
    return graph, result, artifact, index


def _ground_truth_hop(routing, faults, source, target):
    path = routing.get_route(source, target)
    if path is None or any(node in faults for node in path):
        return None
    return path[1]


class TestPointQueries:
    def test_next_hop_matches_routing_under_faults(self, case):
        graph, result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        faults = {nodes[2], nodes[9]}
        engine.set_faults(faults)
        for source in nodes:
            for target in nodes:
                if source == target:
                    continue
                assert engine.next_hop(source, target) == _ground_truth_hop(
                    result.routing, faults, source, target
                ), (source, target)

    def test_route_is_the_surviving_route(self, case):
        graph, result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        engine.fail(nodes[4])
        for source in nodes:
            for target in nodes:
                if source == target:
                    continue
                path = result.routing.get_route(source, target)
                served = engine.route(source, target)
                if path is None or nodes[4] in path:
                    assert served is None
                else:
                    assert served == tuple(path)

    def test_reachability_matches_surviving_route_graph(self, case):
        graph, _result, artifact, index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        faults = [nodes[0], nodes[8]]
        engine.set_faults(faults)
        surviving = index.surviving_route_graph(faults)
        from repro.graphs.traversal import shortest_path

        for source in surviving.nodes():
            for target in surviving.nodes():
                expected = (
                    shortest_path(surviving, source, target) is not None
                )
                assert engine.reachable(source, target) == expected

    def test_diameter_matches_index(self, case):
        graph, _result, artifact, index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        assert engine.surviving_diameter() == index.surviving_diameter([])
        engine.fail(nodes[3])
        engine.fail(nodes[7])
        assert engine.surviving_diameter() == index.surviving_diameter(
            [nodes[3], nodes[7]]
        )

    def test_unknown_node_raises(self, case):
        _graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        with pytest.raises(FaultModelError):
            engine.next_hop("not-a-node", artifact.nodes[0])
        with pytest.raises(FaultModelError):
            engine.fail("not-a-node")
        with pytest.raises(FaultModelError):
            engine.restore("not-a-node")


class TestConsistencyModel:
    def test_views_are_immutable_snapshots(self, case):
        graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        before = engine.view()
        hops_before = before.batch_next_hop(
            [(nodes[0], nodes[5]), (nodes[1], nodes[6])]
        )
        engine.fail(nodes[5])
        # The old snapshot still answers for generation 0.
        assert before.generation == 0
        assert before.batch_next_hop(
            [(nodes[0], nodes[5]), (nodes[1], nodes[6])]
        ) == hops_before
        assert engine.view().generation == 1
        assert engine.view() is not before

    def test_generation_counter(self, case):
        graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        assert engine.generation == 0
        assert engine.fail(nodes[1]) == 1
        assert engine.fail(nodes[1]) == 1  # already faulty: no-op
        assert engine.restore(nodes[1]) == 2
        assert engine.restore(nodes[1]) == 2  # not faulty: no-op
        assert engine.set_faults([nodes[1], nodes[2]]) == 3

    def test_fail_restore_round_trip_restores_answers(self, case):
        graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        base = engine.surviving_diameter()
        engine.fail(nodes[6])
        degraded = engine.surviving_diameter()
        engine.restore(nodes[6])
        assert engine.surviving_diameter() == base
        assert engine.faults == ()
        engine.fail(nodes[6])
        assert engine.surviving_diameter() == degraded


class TestCursorLru:
    def test_flapping_fault_hits_the_cache(self, case):
        graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        for _ in range(4):
            engine.fail(nodes[5])
            engine.surviving_diameter()
            engine.restore(nodes[5])
        stats = engine.stats()
        # First fail is a miss; the three flaps afterwards all hit.
        assert stats["cursor_lru_hits"] >= 3
        assert stats["cursor_lru_misses"] == 1

    def test_lru_capacity_bounded(self, case):
        graph, _result, artifact, _index = case
        engine = ServingEngine(artifact, cursor_lru=2)
        nodes = graph.nodes()
        for node in nodes[:6]:
            engine.fail(node)
            engine.restore(node)
        assert engine.stats()["cursor_lru_size"] <= 2

    def test_lru_size_validated(self, case):
        _graph, _result, artifact, _index = case
        with pytest.raises(ServingError):
            ServingEngine(artifact, cursor_lru=0)

    def test_restore_replays_from_cached_prefix(self, case):
        graph, _result, artifact, index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        engine.fail(nodes[1])
        engine.fail(nodes[2])
        engine.fail(nodes[3])
        engine.restore(nodes[2])
        assert set(engine.faults) == {nodes[1], nodes[3]}
        assert engine.surviving_diameter() == index.surviving_diameter(
            [nodes[1], nodes[3]]
        )


class TestBatchQueries:
    def test_batch_matches_scalar_under_faults(self, case):
        graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        engine.fail(nodes[2])
        view = engine.view()
        pairs = [(s, d) for s in nodes for d in nodes if s != d]
        assert engine.batch_next_hop(pairs) == [
            view.next_hop(s, d) for s, d in pairs
        ]

    def test_id_native_batch_mirrors_container(self, case):
        graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        engine.fail(nodes[1])
        n = artifact.n
        sources = [sid for sid in range(n) for _ in range(n)]
        targets = [tid for _ in range(n) for tid in range(n)]
        from_lists = engine.batch_next_hop_ids(sources, targets)
        assert isinstance(from_lists, list)
        view = engine.view()
        assert from_lists == [
            view.next_hop_id(s, d) for s, d in zip(sources, targets)
        ]
        np = pytest.importorskip("numpy")
        from repro.core.np_kernel import numpy_available

        if not numpy_available():
            pytest.skip("numpy backend disabled")
        from_arrays = engine.batch_next_hop_ids(
            np.asarray(sources), np.asarray(targets)
        )
        assert isinstance(from_arrays, np.ndarray)
        assert from_arrays.tolist() == from_lists

    def test_batch_unknown_label_raises(self, case):
        _graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        with pytest.raises(FaultModelError):
            engine.batch_next_hop([(artifact.nodes[0], "nope")])

    def test_stats_count_queries(self, case):
        graph, _result, artifact, _index = case
        engine = ServingEngine(artifact)
        nodes = graph.nodes()
        engine.next_hop(nodes[0], nodes[1])
        engine.batch_next_hop([(nodes[0], nodes[1]), (nodes[1], nodes[2])])
        engine.note_queries(5, batched=True)
        stats = engine.stats()
        assert stats["queries"] == 8
        assert stats["batched_queries"] == 7

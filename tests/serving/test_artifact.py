"""Unit tests for the compiled routing artifact: format, checksums, refusal."""

import os

import pytest

from repro.core import build_routing
from repro.core.route_index import RouteIndex
from repro.core.routing import MultiRouting
from repro.exceptions import ArtifactError
from repro.graphs import generators
from repro.serving import (
    ARTIFACT_FORMAT_VERSION,
    RoutingArtifact,
    compile_routing_artifact,
    load_artifact,
)
from repro.serving.artifact import ARTIFACT_MAGIC


@pytest.fixture(scope="module")
def single_case():
    graph = generators.circulant_graph(14, [1, 2])
    result = build_routing(graph, strategy="kernel")
    artifact = compile_routing_artifact(graph, result.routing, scheme=result.scheme)
    return graph, result, artifact


@pytest.fixture(scope="module")
def multi_case():
    graph = generators.complete_graph(7)
    nodes = graph.nodes()
    routing = MultiRouting(graph)
    for source in nodes:
        for target in nodes:
            if source == target:
                continue
            routing.add_route(source, target, [source, target])
            detour = next(
                node for node in nodes if node not in (source, target)
            )
            routing.add_route(source, target, [source, detour, target])
    artifact = compile_routing_artifact(graph, routing)
    return graph, routing, artifact


class TestCompile:
    def test_flat_tables_match_routing(self, single_case):
        graph, result, artifact = single_case
        id_of = artifact.id_of
        for (source, target), path in result.routing.items():
            sid, tid = id_of[source], id_of[target]
            assert artifact.next_hop_id(sid, tid) == id_of[path[1]]
            assert artifact.route_ids(sid, tid) == tuple(
                id_of[node] for node in path
            )

    def test_unrouted_pairs_are_minus_one(self, single_case):
        graph, result, artifact = single_case
        n = artifact.n
        routed = sum(1 for hop in artifact.next_hop if hop >= 0)
        assert routed == len(result.routing)
        for sid in range(n):
            assert artifact.next_hop_id(sid, sid) == -1
            assert artifact.route_ids(sid, sid) == ()

    def test_fingerprint_is_the_routing_fingerprint(self, single_case):
        _graph, result, artifact = single_case
        assert artifact.fingerprint == result.routing.fingerprint()

    def test_multi_primary_route_in_flat_tables(self, multi_case):
        _graph, routing, artifact = multi_case
        id_of = artifact.id_of
        for source, target in routing.pairs():
            primary = routing.get_routes(source, target)[0]
            sid, tid = id_of[source], id_of[target]
            assert artifact.next_hop_id(sid, tid) == id_of[primary[1]]

    def test_compile_with_foreign_index_refused(self, single_case):
        graph, result, _artifact = single_case
        other_graph = generators.cycle_graph(6)
        other = build_routing(other_graph, strategy="kernel")
        foreign = RouteIndex(other_graph, other.routing)
        with pytest.raises(ArtifactError):
            compile_routing_artifact(graph, result.routing, index=foreign)

    def test_to_index_evaluates_like_the_original(self, single_case):
        graph, result, artifact = single_case
        original = RouteIndex(graph, result.routing)
        rebuilt = artifact.to_index()
        nodes = graph.nodes()
        for faults in ([], [nodes[0]], [nodes[1], nodes[5]]):
            assert rebuilt.surviving_diameter(
                faults
            ) == original.surviving_diameter(faults)


class TestDiskRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path, single_case):
        _graph, _result, artifact = single_case
        path = os.path.join(tmp_path, "a.repart")
        artifact.save(path)
        loaded = load_artifact(path)
        assert loaded.fingerprint == artifact.fingerprint
        assert loaded.nodes == artifact.nodes
        assert loaded.scheme == artifact.scheme
        assert list(loaded.next_hop) == list(artifact.next_hop)
        assert list(loaded.route_offsets) == list(artifact.route_offsets)
        assert list(loaded.route_nodes) == list(artifact.route_nodes)
        assert loaded.base_rows == artifact.base_rows
        assert loaded.base_preds == artifact.base_preds
        assert loaded.kill_rows == artifact.kill_rows

    def test_multi_round_trip(self, tmp_path, multi_case):
        graph, routing, artifact = multi_case
        path = os.path.join(tmp_path, "m.repart")
        artifact.save(path)
        loaded = load_artifact(path)
        assert loaded.multi
        assert loaded.pair_list == artifact.pair_list
        assert loaded.pair_route_counts == artifact.pair_route_counts
        assert loaded.pair_route_masks == artifact.pair_route_masks
        assert list(loaded.multi_route_nodes) == list(artifact.multi_route_nodes)
        original = RouteIndex(graph, routing)
        nodes = graph.nodes()
        assert loaded.to_index().surviving_diameter(
            [nodes[2]]
        ) == original.surviving_diameter([nodes[2]])

    def test_tuple_node_labels_survive(self, tmp_path):
        graph = generators.grid_graph(3, 3)  # tuple-labelled nodes
        result = build_routing(graph, strategy="kernel")
        artifact = compile_routing_artifact(graph, result.routing)
        path = os.path.join(tmp_path, "g.repart")
        artifact.save(path)
        loaded = load_artifact(path)
        assert loaded.nodes == artifact.nodes
        assert all(isinstance(node, tuple) for node in loaded.nodes)


class TestRefusal:
    def _saved(self, tmp_path, artifact):
        path = os.path.join(tmp_path, "a.repart")
        artifact.save(path)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(os.path.join(tmp_path, "nope.repart"))

    def test_bad_magic(self, tmp_path):
        path = os.path.join(tmp_path, "bad.repart")
        with open(path, "wb") as handle:
            handle.write(b"NOTANART" + b"\x00" * 64)
        with pytest.raises(ArtifactError, match="bad magic"):
            load_artifact(path)

    def test_truncated_header(self, tmp_path, single_case):
        _graph, _result, artifact = single_case
        path = self._saved(tmp_path, artifact)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(ARTIFACT_MAGIC) + 6])
        with pytest.raises(ArtifactError, match="truncated"):
            load_artifact(path)

    def test_payload_tamper_detected(self, tmp_path, single_case):
        _graph, _result, artifact = single_case
        path = self._saved(tmp_path, artifact)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF  # flip one payload byte
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(ArtifactError, match="checksum"):
            load_artifact(path)

    def test_format_version_mismatch(self, tmp_path, single_case):
        _graph, _result, artifact = single_case
        path = self._saved(tmp_path, artifact)
        blob = open(path, "rb").read()
        start = len(ARTIFACT_MAGIC) + 4
        length = int.from_bytes(blob[len(ARTIFACT_MAGIC) : start], "big")
        header = blob[start : start + length].replace(
            b'"format": %d' % ARTIFACT_FORMAT_VERSION,
            b'"format": %d' % (ARTIFACT_FORMAT_VERSION + 1),
        )
        assert header != blob[start : start + length]
        with open(path, "wb") as handle:
            handle.write(
                ARTIFACT_MAGIC
                + len(header).to_bytes(4, "big")
                + header
                + blob[start + length :]
            )
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(path)

    def test_fingerprint_mismatch_refused(self, tmp_path, single_case):
        _graph, _result, artifact = single_case
        path = self._saved(tmp_path, artifact)
        with pytest.raises(ArtifactError, match="fingerprint"):
            load_artifact(path, expect_fingerprint="0" * 64)

    def test_matching_fingerprint_accepted(self, tmp_path, single_case):
        _graph, _result, artifact = single_case
        path = self._saved(tmp_path, artifact)
        loaded = load_artifact(path, expect_fingerprint=artifact.fingerprint)
        assert isinstance(loaded, RoutingArtifact)

"""Property-based equivalence: compiled artifacts vs ``RouteIndex`` ground truth.

For random graphs, routings (single and multi) and fault sets, the serving
layer must answer **byte-identically** to a fresh :class:`RouteIndex` built
from the same objects:

* every ``next_hop``/``route`` answer equals the first surviving route of
  the pair (the routing's own get_route/get_routes filtered by the faults);
* ``reachable`` equals connectivity in the naive surviving route graph;
* ``surviving_diameter`` equals ``RouteIndex.surviving_diameter`` — through
  the bitset backend and, when numpy is installed, the numpy backend of the
  artifact-rebuilt index (``to_index(backend=...)``);
* everything above also holds after a disk round trip (save + verified
  load), which pins the on-disk format against the in-memory compiler.

Without numpy the numpy legs are skipped; the bitset legs stay enforced —
exactly the no-numpy CI configuration.
"""

import os
import random as _random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RouteIndex
from repro.core.np_kernel import numpy_available
from repro.core.routing import MultiRouting, Routing
from repro.graphs import generators
from repro.graphs.traversal import shortest_path
from repro.serving import ServingEngine, compile_routing_artifact, load_artifact

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not available"
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _shortest_path_routing(graph, rng):
    bidirectional = rng.random() < 0.5
    routing = Routing(graph, bidirectional=bidirectional)
    nodes = graph.nodes()
    for source in nodes:
        for target in nodes:
            if source == target or routing.has_route(source, target):
                continue
            path = shortest_path(graph, source, target)
            if path is not None:
                routing.set_route(source, target, path)
    return routing


def _random_multirouting(graph, rng):
    routing = MultiRouting(graph, bidirectional=True)
    nodes = graph.nodes()
    for source in nodes:
        for target in nodes:
            if repr(source) >= repr(target):
                continue
            path = shortest_path(graph, source, target)
            if path is None:
                continue
            routing.add_route(source, target, path)
            if len(path) >= 2 and rng.random() < 0.5:
                for middle in sorted(graph.neighbors(source), key=repr):
                    if middle in (source, target) or middle in path:
                        continue
                    tail = shortest_path(graph, middle, target)
                    if tail and source not in tail and len(set(tail)) == len(tail):
                        routing.add_route(source, target, [source] + tail)
                        break
    return routing


@st.composite
def serving_cases(draw):
    n = draw(st.integers(min_value=3, max_value=11))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    extra = draw(st.floats(min_value=0.0, max_value=0.4))
    multi = draw(st.booleans())
    graph = generators.random_connected_graph(
        n, extra_edge_probability=extra, seed=seed
    )
    rng = _random.Random(seed + 1)
    routing = (
        _random_multirouting(graph, rng)
        if multi
        else _shortest_path_routing(graph, rng)
    )
    fault_count = draw(st.integers(min_value=0, max_value=max(0, n - 1)))
    faults = sorted(rng.sample(graph.nodes(), fault_count), key=repr)
    return graph, routing, faults


def _first_surviving_route(routing, source, target, faults):
    """Ground truth straight off the routing objects (no index machinery)."""
    fault_set = set(faults)
    if source in fault_set or target in fault_set:
        return None
    if isinstance(routing, MultiRouting):
        candidates = routing.get_routes(source, target)
    else:
        path = routing.get_route(source, target)
        candidates = [] if path is None else [path]
    for path in candidates:
        if fault_set.isdisjoint(path):
            return tuple(path)
    return None


class TestCompiledAnswersMatchGroundTruth:
    @SETTINGS
    @given(serving_cases())
    def test_next_hop_and_route(self, case):
        graph, routing, faults = case
        artifact = compile_routing_artifact(graph, routing)
        engine = ServingEngine(artifact)
        engine.set_faults(faults)
        for source in graph.nodes():
            for target in graph.nodes():
                if source == target:
                    continue
                expected = _first_surviving_route(
                    routing, source, target, faults
                )
                assert engine.route(source, target) == expected
                assert engine.next_hop(source, target) == (
                    None if expected is None else expected[1]
                )

    @SETTINGS
    @given(serving_cases())
    def test_batch_equals_scalar(self, case):
        graph, routing, faults = case
        artifact = compile_routing_artifact(graph, routing)
        engine = ServingEngine(artifact)
        engine.set_faults(faults)
        view = engine.view()
        nodes = graph.nodes()
        pairs = [(s, d) for s in nodes for d in nodes if s != d]
        assert view.batch_next_hop(pairs) == [
            view.next_hop(s, d) for s, d in pairs
        ]

    @SETTINGS
    @given(serving_cases())
    def test_reachability_and_diameter(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        artifact = compile_routing_artifact(graph, routing, index=index)
        engine = ServingEngine(artifact)
        engine.set_faults(faults)
        assert engine.surviving_diameter() == index.surviving_diameter(faults)
        surviving = index.surviving_route_graph(faults)
        alive = set(surviving.nodes())
        for source in graph.nodes():
            for target in graph.nodes():
                expected = (
                    source in alive
                    and target in alive
                    and shortest_path(surviving, source, target) is not None
                )
                assert engine.reachable(source, target) == expected


class TestBackendsAndDiskRoundTrip:
    @SETTINGS
    @given(serving_cases())
    def test_disk_round_trip_is_byte_identical(self, tmp_path_factory, case):
        graph, routing, faults = case
        artifact = compile_routing_artifact(graph, routing)
        directory = tmp_path_factory.mktemp("artifacts")
        path = os.path.join(directory, "case.repart")
        artifact.save(path)
        loaded = load_artifact(path, expect_fingerprint=routing.fingerprint())
        fresh = ServingEngine(artifact)
        reloaded = ServingEngine(loaded)
        fresh.set_faults(faults)
        reloaded.set_faults(faults)
        nodes = graph.nodes()
        pairs = [(s, d) for s in nodes for d in nodes if s != d]
        assert reloaded.batch_next_hop(pairs) == fresh.batch_next_hop(pairs)
        assert reloaded.surviving_diameter() == fresh.surviving_diameter()

    @SETTINGS
    @given(serving_cases())
    def test_bitset_backend_matches_index(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing, backend="bitset")
        artifact = compile_routing_artifact(graph, routing, backend="bitset")
        engine = ServingEngine(artifact, backend="bitset")
        engine.set_faults(faults)
        assert engine.index.eval_backend == "bitset"
        assert engine.surviving_diameter() == index.surviving_diameter(faults)

    @requires_numpy
    @SETTINGS
    @given(serving_cases())
    def test_numpy_backend_matches_bitset(self, case):
        graph, routing, faults = case
        artifact = compile_routing_artifact(graph, routing)
        bitset = ServingEngine(artifact, backend="bitset")
        vectorised = ServingEngine(artifact, backend="numpy")
        bitset.set_faults(faults)
        vectorised.set_faults(faults)
        assert vectorised.index.eval_backend == "numpy"
        assert vectorised.surviving_diameter() == bitset.surviving_diameter()
        nodes = graph.nodes()
        pairs = [(s, d) for s in nodes for d in nodes if s != d]
        assert vectorised.batch_next_hop(pairs) == bitset.batch_next_hop(pairs)

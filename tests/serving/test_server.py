"""Integration tests for the asyncio serving front end + thin client."""

import asyncio
import json

import pytest

from repro.core import build_routing
from repro.exceptions import ServingError
from repro.graphs import generators
from repro.serving import (
    RoutingTableServer,
    ServingClient,
    ServingEngine,
    compile_routing_artifact,
)


@pytest.fixture(scope="module")
def artifact():
    graph = generators.circulant_graph(12, [1, 2])
    result = build_routing(graph, strategy="kernel")
    return compile_routing_artifact(graph, result.routing, scheme=result.scheme)


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(artifact, body):
    engine = ServingEngine(artifact)
    server = RoutingTableServer(engine)
    await server.start()
    host, port = server.address
    try:
        client = await ServingClient.connect(host, port)
        async with client:
            return await body(client, engine)
    finally:
        await server.stop()


class TestProtocol:
    def test_ping_info_stats(self, artifact):
        async def body(client, engine):
            assert await client.ping() == "pong"
            info = await client.info()
            assert info["fingerprint"] == artifact.fingerprint
            assert info["n"] == artifact.n
            stats = await client.stats()
            assert stats["generation"] == 0
            return True

        assert run(_with_server(artifact, body))

    def test_query_ops_round_trip(self, artifact):
        async def body(client, engine):
            view = engine.view()
            nodes = artifact.nodes
            assert await client.next_hop(nodes[0], nodes[3]) == view.next_hop(
                nodes[0], nodes[3]
            )
            served = await client.route(nodes[0], nodes[3])
            assert served == view.route(nodes[0], nodes[3])
            assert await client.reachable(nodes[0], nodes[3]) == view.reachable(
                nodes[0], nodes[3]
            )
            assert await client.diameter() == view.surviving_diameter()
            pairs = [(nodes[0], nodes[3]), (nodes[2], nodes[7])]
            assert await client.batch_next_hop(pairs) == view.batch_next_hop(
                pairs
            )
            return True

        assert run(_with_server(artifact, body))

    def test_fault_updates_bump_generation(self, artifact):
        async def body(client, engine):
            victim = artifact.nodes[4]
            generation = await client.fail(victim)
            assert generation == 1
            assert victim in await client.faults()
            assert await client.next_hop(victim, artifact.nodes[0]) is None
            generation = await client.restore(victim)
            assert generation == 2
            assert await client.faults() == ()
            return True

        assert run(_with_server(artifact, body))

    def test_disconnected_diameter_is_infinite(self, artifact):
        async def body(client, engine):
            # Fail enough nodes to disconnect the surviving route graph.
            for node in artifact.nodes[1:5]:
                await client.fail(node)
            value = await client.diameter()
            assert value == float("inf") or value > 0
            return True

        assert run(_with_server(artifact, body))

    def test_errors_keep_the_connection_open(self, artifact):
        async def body(client, engine):
            with pytest.raises(ServingError, match="FaultModelError"):
                await client.next_hop("nope", artifact.nodes[0])
            # The connection survives the rejected request.
            assert await client.ping() == "pong"
            with pytest.raises(ServingError, match="unknown op"):
                await client._call("explode")
            assert await client.ping() == "pong"
            return True

        assert run(_with_server(artifact, body))

    def test_concurrent_clients(self, artifact):
        async def scenario():
            engine = ServingEngine(artifact)
            server = RoutingTableServer(engine)
            await server.start()
            host, port = server.address
            clients = [
                await ServingClient.connect(host, port) for _ in range(4)
            ]
            try:
                nodes = artifact.nodes
                results = await asyncio.gather(
                    *(
                        c.batch_next_hop(
                            [(nodes[i], nodes[(i + 3) % len(nodes)])]
                        )
                        for i, c in enumerate(clients)
                    )
                )
                assert len(results) == 4
                view = engine.view()
                for i, result in enumerate(results):
                    assert result == view.batch_next_hop(
                        [(nodes[i], nodes[(i + 3) % len(nodes)])]
                    )
            finally:
                for c in clients:
                    await c.close()
                await server.stop()
            return True

        assert run(scenario())

    def test_raw_protocol_request_id_echo(self, artifact):
        async def scenario():
            engine = ServingEngine(artifact)
            server = RoutingTableServer(engine)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b'{"op": "ping", "id": 42}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response == {
                    "ok": True,
                    "result": "pong",
                    "generation": 0,
                    "id": 42,
                }
                # Unknown op reports an error but answers.
                writer.write(b'{"op": "nope", "id": 7}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["id"] == 7
            finally:
                writer.close()
                await writer.wait_closed()
            await server.stop()
            return True

        assert run(scenario())

    def test_address_requires_started_server(self, artifact):
        server = RoutingTableServer(ServingEngine(artifact))
        with pytest.raises(ServingError):
            server.address

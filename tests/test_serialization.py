"""Unit tests for JSON serialisation of graphs, routings and constructions."""

import io
import json

import pytest

from repro.core import (
    MultiRouting,
    Routing,
    full_multirouting,
    kernel_routing,
    surviving_diameter,
)
from repro.graphs import generators, synthetic
from repro.serialization import (
    SerializationError,
    construction_from_dict,
    construction_to_dict,
    decode_node,
    encode_node,
    graph_from_dict,
    graph_to_dict,
    load_json,
    routing_from_dict,
    routing_to_dict,
    save_json,
)


class TestNodeEncoding:
    def test_scalars_roundtrip(self):
        for node in (0, -5, 3.5, "name", True, None):
            assert decode_node(encode_node(node)) == node

    def test_tuples_roundtrip(self):
        for node in (("ring", 3), ("a", ("b", 1)), (1, 2, 3)):
            assert decode_node(encode_node(node)) == node

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_node(object())

    def test_bad_document_rejected(self):
        with pytest.raises(SerializationError):
            decode_node({"not-a-tuple": []})


class TestGraphRoundtrip:
    @pytest.mark.parametrize(
        "graph",
        [
            generators.cycle_graph(8),
            generators.hypercube_graph(3),
            generators.grid_graph(3, 3),
            synthetic.flower_graph(t=1, k=3)[0],
        ],
        ids=lambda g: g.name,
    )
    def test_roundtrip_preserves_structure(self, graph):
        document = graph_to_dict(graph)
        restored = graph_from_dict(document)
        assert restored == graph
        assert restored.name == graph.name

    def test_document_is_json_serialisable(self):
        document = graph_to_dict(generators.grid_graph(2, 3))
        json.dumps(document)

    def test_wrong_kind_rejected(self):
        document = graph_to_dict(generators.cycle_graph(4))
        document["kind"] = "routing"
        with pytest.raises(SerializationError):
            graph_from_dict(document)

    def test_wrong_version_rejected(self):
        document = graph_to_dict(generators.cycle_graph(4))
        document["format"] = 99
        with pytest.raises(SerializationError):
            graph_from_dict(document)


class TestRoutingRoundtrip:
    def test_bidirectional_routing(self):
        graph = generators.cycle_graph(10)
        result = kernel_routing(graph)
        document = routing_to_dict(result.routing)
        restored = routing_from_dict(document)
        assert len(restored) == len(result.routing)
        assert restored.bidirectional
        for pair, path in result.routing.items():
            assert restored.get_route(*pair) == path

    def test_restored_routing_behaves_identically(self):
        graph = generators.cycle_graph(10)
        result = kernel_routing(graph)
        restored = routing_from_dict(routing_to_dict(result.routing))
        for faults in (set(), {0}, {3}):
            assert surviving_diameter(restored.graph, restored, faults) == surviving_diameter(
                graph, result.routing, faults
            )

    def test_multirouting_roundtrip(self):
        graph = generators.circulant_graph(8, [1, 2])
        result = full_multirouting(graph)
        restored = routing_from_dict(routing_to_dict(result.routing))
        assert isinstance(restored, MultiRouting)
        assert restored.route_count() == result.routing.route_count()

    def test_bind_to_existing_graph(self):
        graph = generators.cycle_graph(6)
        routing = Routing(graph)
        routing.add_all_edge_routes()
        restored = routing_from_dict(routing_to_dict(routing), graph=graph)
        assert restored.graph is graph

    def test_wrong_kind_rejected(self):
        document = graph_to_dict(generators.cycle_graph(4))
        with pytest.raises(SerializationError):
            routing_from_dict(document)


class TestConstructionRoundtrip:
    def test_roundtrip(self):
        graph = generators.cycle_graph(12)
        result = kernel_routing(graph)
        restored = construction_from_dict(construction_to_dict(result))
        assert restored.scheme == result.scheme
        assert restored.t == result.t
        assert restored.guarantee.diameter_bound == result.guarantee.diameter_bound
        assert restored.guarantee.max_faults == result.guarantee.max_faults
        assert restored.concentrator == result.concentrator
        assert len(restored.routing) == len(result.routing)

    def test_non_serialisable_details_dropped(self):
        graph = generators.cycle_graph(12)
        result = kernel_routing(graph)
        result.details["weird"] = object()
        document = construction_to_dict(result)
        assert "weird" not in document["details"]
        json.dumps(document)


class TestFileHelpers:
    def test_save_and_load_path(self, tmp_path):
        graph = generators.cycle_graph(6)
        path = str(tmp_path / "graph.json")
        save_json(graph_to_dict(graph), path)
        assert graph_from_dict(load_json(path)) == graph

    def test_save_and_load_stream(self):
        graph = generators.cycle_graph(5)
        buffer = io.StringIO()
        save_json(graph_to_dict(graph), buffer)
        buffer.seek(0)
        assert graph_from_dict(load_json(buffer)) == graph

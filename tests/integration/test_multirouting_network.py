"""Integration tests: multiroutings and broadcast running through the simulator.

The Section 6 multiroutings change the surviving-graph semantics (an arc
survives if *any* parallel route does); these tests make sure the network
simulator and the broadcast protocol honour that semantics end to end.
"""

import pytest

from repro.core import (
    full_multirouting,
    kernel_multirouting,
    single_tree_multirouting,
    surviving_diameter,
)
from repro.graphs import generators
from repro.network import NetworkSimulator, broadcast_rounds_from_all, route_counter_broadcast


@pytest.fixture(scope="module")
def circulant():
    return generators.circulant_graph(10, [1, 2])


class TestFullMultiroutingNetwork:
    def test_single_segment_deliveries_under_max_faults(self, circulant):
        result = full_multirouting(circulant)
        simulator = NetworkSimulator(circulant, result.routing)
        simulator.fail_nodes([1, 4, 8])  # t = 3 faults
        alive = [node for node in circulant.nodes() if node not in {1, 4, 8}]
        for origin, destination in zip(alive[:-1], alive[1:]):
            receipt = simulator.send(origin, destination, "x")
            assert receipt.delivered
            assert receipt.routes_used == 1

    def test_broadcast_single_round(self, circulant):
        result = full_multirouting(circulant)
        outcome = route_counter_broadcast(circulant, result.routing, 0, faults={3, 7})
        assert outcome.rounds_used == 1
        assert outcome.coverage() == 1.0


class TestKernelMultiroutingNetwork:
    def test_deliveries_within_three_segments(self, circulant):
        result = kernel_multirouting(circulant)
        simulator = NetworkSimulator(circulant, result.routing)
        faults = list(result.concentrator)[:2]
        simulator.fail_nodes(faults)
        alive = [node for node in circulant.nodes() if node not in set(faults)]
        for origin, destination in [(alive[0], alive[-1]), (alive[1], alive[-2])]:
            receipt = simulator.send(origin, destination, "payload")
            assert receipt.delivered
            assert receipt.routes_used <= 3

    def test_broadcast_rounds_bounded(self, circulant):
        result = kernel_multirouting(circulant)
        faults = {result.concentrator[0]}
        rounds = broadcast_rounds_from_all(circulant, result.routing, faults=faults)
        assert max(rounds.values()) <= surviving_diameter(circulant, result.routing, faults)
        assert max(rounds.values()) <= 3


class TestSingleTreeMultiroutingNetwork:
    def test_deliveries_survive_concentrator_attack(self, circulant):
        result = single_tree_multirouting(circulant)
        simulator = NetworkSimulator(circulant, result.routing)
        faults = list(result.concentrator)[: result.t]
        simulator.fail_nodes(faults)
        alive = [node for node in circulant.nodes() if node not in set(faults)]
        receipt = simulator.send(alive[0], alive[-1], "payload")
        assert receipt.delivered
        assert receipt.routes_used <= 4

    def test_parallel_route_fallback(self, circulant):
        """If one of the two parallel routes dies, the other still carries the arc."""
        result = single_tree_multirouting(circulant)
        routing = result.routing
        # Find a pair with two distinct parallel routes.
        pair = next(
            (p for p in routing.pairs() if len(routing.get_routes(*p)) == 2), None
        )
        if pair is None:
            pytest.skip("no doubly-routed pair on this instance")
        first, second = routing.get_routes(*pair)
        only_on_first = [node for node in first if node not in second and node not in pair]
        if not only_on_first:
            pytest.skip("routes overlap everywhere except endpoints")
        surviving = surviving_diameter(circulant, routing, {only_on_first[0]})
        assert surviving != float("inf")

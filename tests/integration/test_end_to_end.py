"""End-to-end integration tests: graph family -> routing -> faults -> delivery.

These tests exercise the whole stack the way the examples do: pick a network
from the families the paper names, build a routing through the public facade,
inject admissible faults, and check that (a) the surviving diameter respects
the construction's guarantee and (b) the network simulator actually delivers
messages across the faults within that many route traversals.
"""

import pytest

from repro import build_routing, surviving_diameter
from repro.core import verify_construction
from repro.faults import FaultSet, random_fault_sets
from repro.graphs import generators, node_connectivity, synthetic
from repro.network import (
    NetworkSimulator,
    XorEncryptionService,
    broadcast_rounds_from_all,
    route_counter_broadcast,
)


FAMILIES = [
    ("cycle-16", lambda: generators.cycle_graph(16)),
    ("hypercube-3", lambda: generators.hypercube_graph(3)),
    ("ccc-3", lambda: generators.cube_connected_cycles_graph(3)),
    ("torus-4x4", lambda: generators.torus_graph(4, 4)),
    ("circulant-12", lambda: generators.circulant_graph(12, [1, 2])),
    ("grid-4x4", lambda: generators.grid_graph(4, 4)),
]


@pytest.mark.parametrize("name,factory", FAMILIES, ids=[name for name, _ in FAMILIES])
class TestAutoRoutingOnNamedFamilies:
    def test_build_and_verify(self, name, factory):
        graph = factory()
        result = build_routing(graph)
        assert result.t == node_connectivity(graph) - 1
        report = verify_construction(result, exhaustive_limit=300, seed=1)
        assert report.holds, f"{name}: {report}"

    def test_delivery_under_random_faults(self, name, factory):
        graph = factory()
        result = build_routing(graph)
        t = result.t
        fault_sets = list(random_fault_sets(graph.nodes(), t, 3, seed=5))
        for fault_set in fault_sets:
            simulator = NetworkSimulator(graph, result.routing)
            simulator.fail_nodes(fault_set)
            alive = [node for node in graph.nodes() if node not in fault_set]
            origin, destination = alive[0], alive[-1]
            receipt = simulator.send(origin, destination, payload=f"probe-{name}")
            assert receipt.delivered
            assert receipt.routes_used <= result.guarantee.diameter_bound


class TestFullStackScenario:
    def test_flower_graph_tricircular_scenario(self, flower_t1_k15, tricircular_on_flower):
        graph, flowers = flower_t1_k15
        result = tricircular_on_flower
        faults = {flowers[0]}

        # 1. the guarantee holds for this fault set
        assert surviving_diameter(graph, result.routing, faults) <= 4

        # 2. encrypted delivery succeeds across the fault
        simulator = NetworkSimulator(graph, result.routing, service=XorEncryptionService())
        simulator.fail_nodes(faults)
        receipt = simulator.send(("ring", 1), ("ring", 30), "secret payload")
        assert receipt.delivered
        assert receipt.routes_used <= 4
        assert simulator.nodes[("ring", 30)].application_inbox == ["secret payload"]

        # 3. the route-counter broadcast recomputes tables within the bound
        outcome = route_counter_broadcast(
            graph, result.routing, ("ring", 1), faults=faults, counter_limit=4
        )
        assert outcome.coverage() == 1.0

    def test_two_trees_bipolar_scenario(self, two_trees_t2, bipolar_uni_on_two_trees):
        graph, r1, r2 = two_trees_t2
        result = bipolar_uni_on_two_trees
        m1 = result.details["m1"]
        faults = {m1[0], m1[1]}  # attack one root's neighbourhood

        assert surviving_diameter(graph, result.routing, faults) <= 4
        rounds = broadcast_rounds_from_all(graph, result.routing, faults=faults)
        assert max(rounds.values()) <= 4

    def test_kernel_graph_comparison_of_schemes(self, kernel_graph_t2):
        graph = kernel_graph_t2
        kernel = build_routing(graph, strategy="kernel", t=2)
        clique = build_routing(graph, strategy="kernel+clique", t=2)
        faults = FaultSet({("bridge", 0)})
        kernel_diam = surviving_diameter(graph, kernel.routing, faults)
        clique_diam = surviving_diameter(clique.graph, clique.routing, faults)
        assert clique_diam <= 3
        assert kernel_diam <= 2 * kernel.t
        assert clique_diam <= kernel_diam

    def test_edge_faults_convention(self):
        graph = generators.circulant_graph(12, [1, 2])
        result = build_routing(graph, strategy="kernel")
        edge_faults = [(0, 1), (5, 6)]
        fault_set = FaultSet.from_edge_faults(graph, edge_faults)
        assert len(fault_set) <= result.t + 1
        diam = surviving_diameter(graph, result.routing, fault_set)
        assert diam != float("inf")


class TestRepairScenario:
    def test_fail_then_repair_restores_diameter(self):
        graph = generators.cycle_graph(12)
        result = build_routing(graph, strategy="circular")
        simulator = NetworkSimulator(graph, result.routing)
        baseline = simulator.surviving_graph().number_of_edges()
        simulator.fail_node(4)
        degraded = simulator.surviving_graph().number_of_edges()
        simulator.repair_node(4)
        restored = simulator.surviving_graph().number_of_edges()
        assert degraded < baseline
        assert restored == baseline

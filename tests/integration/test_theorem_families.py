"""Integration tests sweeping each theorem over several graphs / fault levels.

Each test here is a miniature version of the corresponding benchmark: it
constructs the routing on a couple of graphs satisfying the theorem's
hypothesis and checks the proven diameter bound against exhaustively or
adversarially searched fault sets.  The benchmarks run the same sweeps on
larger instances and print the full tables.
"""

import pytest

from repro.analysis import ExperimentRunner
from repro.core import (
    bidirectional_bipolar_routing,
    circular_routing,
    clique_augmented_kernel_routing,
    full_multirouting,
    kernel_multirouting,
    kernel_routing,
    tricircular_routing,
    unidirectional_bipolar_routing,
)
from repro.faults import all_fault_sets
from repro.graphs import generators, synthetic


class TestTheorem3And4Kernel:
    @pytest.mark.parametrize("n", [9, 12, 15])
    def test_cycles(self, n):
        graph = generators.cycle_graph(n)
        result = kernel_routing(graph)
        runner = ExperimentRunner()
        theorem3 = runner.run(
            "theorem3", graph, lambda g: kernel_routing(g),
            max_faults=1, diameter_bound=4,
        )
        theorem4 = runner.run(
            "theorem4", graph, lambda g: kernel_routing(g),
            max_faults=0, diameter_bound=4,
        )
        assert theorem3.holds and theorem4.holds
        assert result.t == 1

    def test_t2_graph_half_faults(self, kernel_graph_t2):
        result = kernel_routing(kernel_graph_t2, t=2)
        runner = ExperimentRunner(exhaustive_limit=1000)
        record = runner.run(
            "theorem4", kernel_graph_t2, lambda g: kernel_routing(g, t=2),
            max_faults=1, diameter_bound=4,
        )
        assert record.exhaustive
        assert record.holds


class TestTheorem10Circular:
    @pytest.mark.parametrize("n", [12, 18, 24])
    def test_cycles_exhaustive(self, n):
        graph = generators.cycle_graph(n)
        result = circular_routing(graph)
        report_faults = list(all_fault_sets(graph.nodes(), 1))
        from repro.core import check_tolerance

        report = check_tolerance(graph, result.routing, 6, 1, fault_sets=report_faults)
        assert report.holds

    def test_flower_t2(self, circular_on_flower):
        from repro.core import verify_construction

        report = verify_construction(circular_on_flower, exhaustive_limit=400)
        assert report.exhaustive and report.holds


class TestTheorem13AndRemark14Tricircular:
    def test_standard_variant(self, tricircular_on_flower):
        from repro.core import verify_construction

        report = verify_construction(tricircular_on_flower, exhaustive_limit=100)
        assert report.holds
        assert report.worst_diameter <= 4

    def test_small_variant(self):
        graph, flowers = synthetic.flower_graph(t=1, k=9)
        result = tricircular_routing(graph, t=1, concentrator=flowers, small=True)
        from repro.core import verify_construction

        report = verify_construction(result, exhaustive_limit=100)
        assert report.holds
        assert report.worst_diameter <= 5


class TestTheorems20And23Bipolar:
    @pytest.mark.parametrize("n", [11, 14])
    def test_cycles(self, n):
        graph = generators.cycle_graph(n)
        uni = unidirectional_bipolar_routing(graph)
        bi = bidirectional_bipolar_routing(graph)
        from repro.core import check_tolerance

        fault_sets = list(all_fault_sets(graph.nodes(), 1))
        assert check_tolerance(graph, uni.routing, 4, 1, fault_sets=fault_sets).holds
        assert check_tolerance(graph, bi.routing, 5, 1, fault_sets=fault_sets).holds

    def test_synthetic_two_trees(self, bipolar_uni_on_two_trees, bipolar_bi_on_two_trees):
        from repro.core import verify_construction

        assert verify_construction(bipolar_uni_on_two_trees, exhaustive_limit=500).holds
        assert verify_construction(bipolar_bi_on_two_trees, exhaustive_limit=500).holds


class TestSection6:
    def test_multiroutings_and_augmentation(self):
        graph = generators.circulant_graph(10, [1, 2])
        from repro.core import verify_construction

        assert verify_construction(full_multirouting(graph)).worst_diameter == 1
        assert verify_construction(kernel_multirouting(graph)).worst_diameter <= 3
        augmented = clique_augmented_kernel_routing(graph)
        assert verify_construction(augmented).worst_diameter <= 3
        assert augmented.details["added_edge_count"] <= augmented.t * (augmented.t + 1) // 2

"""Chaos-injection integration tests: crash a sweep, prove nothing changed.

The supervision layer's whole claim is that fault recovery is *invisible in
the results*: a sweep that loses a worker, hits a poisoned task, wedges on
a hang or tears a store write must end with byte-identical store contents
to an undisturbed run.  These tests drive :func:`run_scenario_suite` and
the ``repro grid`` CLI under ``REPRO_CHAOS`` injections (see
:mod:`repro.runtime.chaos`) and compare stores byte for byte against a
golden run.

The once-only ledger (``REPRO_CHAOS_LEDGER``) makes transient faults
expressible — kill one worker, then let the retry succeed.  Injections
without a ledger are permanent faults and exercise the quarantine path:
the campaign becomes a ``disposition="failed"`` status row instead of
aborting the sweep.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import render_scaling_report
from repro.faults.simulation import CampaignStatus
from repro.results import ResultStore
from repro.runtime import CHAOS_ENV, LEDGER_ENV, SupervisorPolicy
from repro.scenarios import run_scenario_suite, suite_manifest

REPO_ROOT = Path(__file__).resolve().parents[2]

SCENARIOS = [
    "cycle:n=12/kernel/t=1/sizes:1,2",
    "hypercube:d=3/kernel/t=1/sizes:1",
]
SAMPLES = 6
SEED = 3
CHUNK = 4
MANIFEST = suite_manifest(SCENARIOS, SAMPLES, SEED, None, CHUNK)

#: Fast-retry policy so injected failures do not spend real wall-clock.
FAST = SupervisorPolicy(backoff_base=0.001, backoff_max=0.002)


def _run_suite(store_path, *, workers=1, policy=FAST, skipped=None):
    store_path = Path(store_path)
    if store_path.exists():
        store = ResultStore.open(str(store_path), MANIFEST)
    else:
        store = ResultStore.create(str(store_path), MANIFEST)
    try:
        rows = run_scenario_suite(
            SCENARIOS,
            samples=SAMPLES,
            seed=SEED,
            chunk_size=CHUNK,
            workers=workers,
            store=store,
            policy=policy,
            skipped=skipped,
        )
    finally:
        store.close()
    return rows


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """Bytes and records of an undisturbed run (chaos env forced clean)."""
    saved = {
        key: os.environ.pop(key)
        for key in (CHAOS_ENV, LEDGER_ENV)
        if key in os.environ
    }
    try:
        path = tmp_path_factory.mktemp("golden") / "golden.jsonl"
        rows = _run_suite(path, workers=2)
        return path.read_bytes(), [row.record() for row in rows]
    finally:
        os.environ.update(saved)


@pytest.fixture
def ledger(tmp_path, monkeypatch):
    directory = tmp_path / "ledger"
    directory.mkdir()
    monkeypatch.setenv(LEDGER_ENV, str(directory))
    return directory


class TestTransientFaults:
    """Once-only injections: the retry recomputes, nothing differs."""

    def test_poisoned_task_inprocess_retries_byte_identical(
        self, tmp_path, monkeypatch, ledger, golden
    ):
        monkeypatch.setenv(CHAOS_ENV, "task:fail")
        path = tmp_path / "store.jsonl"
        rows = _run_suite(path, workers=1)
        assert path.read_bytes() == golden[0]
        assert [row.record() for row in rows] == golden[1]

    def test_poisoned_task_pooled_retries_byte_identical(
        self, tmp_path, monkeypatch, ledger, golden
    ):
        monkeypatch.setenv(CHAOS_ENV, "task:fail")
        path = tmp_path / "store.jsonl"
        rows = _run_suite(path, workers=2)
        assert path.read_bytes() == golden[0]
        assert [row.record() for row in rows] == golden[1]

    def test_killed_worker_rebuilds_pool_byte_identical(
        self, tmp_path, monkeypatch, ledger, golden
    ):
        monkeypatch.setenv(CHAOS_ENV, "task:kill")
        path = tmp_path / "store.jsonl"
        rows = _run_suite(path, workers=2)
        assert path.read_bytes() == golden[0]
        assert [row.record() for row in rows] == golden[1]

    def test_hung_worker_times_out_byte_identical(
        self, tmp_path, monkeypatch, ledger, golden
    ):
        monkeypatch.setenv(CHAOS_ENV, "task:hang")
        policy = SupervisorPolicy(
            task_timeout=1.0, backoff_base=0.001, backoff_max=0.002
        )
        path = tmp_path / "store.jsonl"
        rows = _run_suite(path, workers=2, policy=policy)
        assert path.read_bytes() == golden[0]
        assert [row.record() for row in rows] == golden[1]


class TestQuarantine:
    """Permanent injections: the campaign fails as a row, not the sweep."""

    def test_always_failing_campaign_quarantines_and_resumes(
        self, tmp_path, monkeypatch
    ):
        # No ledger: every hypercube shard is poisoned on every attempt.
        monkeypatch.setenv(CHAOS_ENV, "task:fail:hypercube")
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        path = tmp_path / "store.jsonl"
        rows = _run_suite(
            path,
            workers=2,
            policy=SupervisorPolicy(
                max_retries=1, backoff_base=0.001, backoff_max=0.002
            ),
        )
        assert len(rows) == 3
        failed = [
            row for row in rows if isinstance(row.campaign, CampaignStatus)
        ]
        assert len(failed) == 1
        assert failed[0].scenario.startswith("hypercube")
        assert failed[0].campaign.disposition == "failed"
        assert "injected failure" in failed[0].campaign.reason
        # The scenario itself built fine; the row keeps its provenance.
        assert failed[0].fingerprint is not None
        first_bytes = path.read_bytes()
        first_records = [row.record() for row in rows]

        # The stored report distinguishes "failed" from "not swept".
        loaded = ResultStore.load(str(path))
        report = render_scaling_report(loaded.frame, loaded.run)
        assert "failed" in report
        assert "(1 failed)" in report

        # Resume with chaos cleared: failed rows are never silently
        # retried — everything rehydrates and the store does not change.
        monkeypatch.delenv(CHAOS_ENV)
        resumed = _run_suite(path, workers=1)
        assert [row.record() for row in resumed] == first_records
        assert path.read_bytes() == first_bytes

    def test_strict_restores_fail_fast(self, tmp_path, monkeypatch):
        from repro.runtime import TaskFailedError

        monkeypatch.setenv(CHAOS_ENV, "task:fail:hypercube")
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        path = tmp_path / "store.jsonl"
        with pytest.raises(TaskFailedError):
            _run_suite(
                path,
                workers=1,
                policy=SupervisorPolicy(
                    max_retries=0,
                    strict=True,
                    backoff_base=0.001,
                    backoff_max=0.002,
                ),
            )


class TestTornStoreWrites:
    """A writer killed mid-append: salvage + resume ends byte-identical."""

    GRID = "cycle:n=12/kernel/t=1/sizes:1-2"
    ARGS = ["--samples", "6", "--chunk-size", "4", "--seed", "3"]

    def _cli(self, tmp_path, *argv, chaos=None):
        env = {
            key: value
            for key, value in os.environ.items()
            if key not in (CHAOS_ENV, LEDGER_ENV)
        }
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        if chaos:
            env[CHAOS_ENV] = chaos
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            cwd=str(tmp_path),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_torn_append_salvage_resume_byte_identical(self, tmp_path):
        golden = self._cli(
            tmp_path, "grid", self.GRID, *self.ARGS, "--store", "golden.jsonl"
        )
        assert golden.returncode == 0, golden.stderr

        # The injected writer tears its first append and dies (exit 23).
        torn = self._cli(
            tmp_path,
            "grid",
            self.GRID,
            *self.ARGS,
            "--store",
            "chaos.jsonl",
            chaos="append:torn",
        )
        assert torn.returncode == 23
        chaos_store = tmp_path / "chaos.jsonl"
        golden_bytes = (tmp_path / "golden.jsonl").read_bytes()
        assert chaos_store.read_bytes() != golden_bytes

        # Explicit salvage quarantines the torn tail...
        salvage = self._cli(tmp_path, "salvage", "chaos.jsonl")
        assert salvage.returncode == 0, salvage.stderr
        assert "quarantined" in salvage.stdout
        sidecar = tmp_path / "chaos.jsonl.quarantine"
        assert sidecar.exists()
        assert sidecar.read_bytes().strip()

        # ...and the resumed sweep finishes with the golden bytes exactly.
        resumed = self._cli(
            tmp_path,
            "grid",
            self.GRID,
            *self.ARGS,
            "--store",
            "chaos.jsonl",
            "--resume",
        )
        assert resumed.returncode == 0, resumed.stderr
        assert chaos_store.read_bytes() == golden_bytes

    def test_resume_alone_salvages_torn_store(self, tmp_path):
        golden = self._cli(
            tmp_path, "grid", self.GRID, *self.ARGS, "--store", "golden.jsonl"
        )
        assert golden.returncode == 0, golden.stderr
        torn = self._cli(
            tmp_path,
            "grid",
            self.GRID,
            *self.ARGS,
            "--store",
            "chaos.jsonl",
            chaos="append:torn",
        )
        assert torn.returncode == 23
        # No explicit salvage: --resume quarantines the tail itself.
        resumed = self._cli(
            tmp_path,
            "grid",
            self.GRID,
            *self.ARGS,
            "--store",
            "chaos.jsonl",
            "--resume",
        )
        assert resumed.returncode == 0, resumed.stderr
        assert (tmp_path / "chaos.jsonl").read_bytes() == (
            tmp_path / "golden.jsonl"
        ).read_bytes()
        assert (tmp_path / "chaos.jsonl.quarantine").exists()


class TestInapplicableAnnotations:
    """Dropped scenarios are recorded and annotated, and resume cleanly."""

    def test_grid_records_inapplicable_and_report_annotates(self, tmp_path):
        saved = {
            key: os.environ.pop(key)
            for key in (CHAOS_ENV, LEDGER_ENV)
            if key in os.environ
        }
        try:
            # circular does not apply to hypercubes of this size: with a
            # strategy axis the combination drops and records status rows.
            scenarios = [
                "hypercube:d=3/kernel/t=1/sizes:1",
                "hypercube:d=3/circular/t=1/sizes:1",
            ]
            manifest = suite_manifest(scenarios, SAMPLES, SEED, None, CHUNK)
            path = tmp_path / "store.jsonl"
            store = ResultStore.create(str(path), manifest)
            skipped = []
            try:
                rows = run_scenario_suite(
                    scenarios,
                    samples=SAMPLES,
                    seed=SEED,
                    chunk_size=CHUNK,
                    store=store,
                    skip_inapplicable=True,
                    skipped=skipped,
                    policy=FAST,
                )
            finally:
                store.close()
            assert len(skipped) == 1
            assert len(rows) == 1  # the dropped scenario returns no rows
            first_bytes = path.read_bytes()

            loaded = ResultStore.load(str(path))
            assert len(loaded) == 2  # campaign row + inapplicable status row
            report = render_scaling_report(loaded.frame, loaded.run)
            assert "n/a" in report
            assert "(1 not applicable)" in report

            # Resume honours the stored drop without rebuilding: same rows,
            # same bytes, same skipped notice.
            store = ResultStore.open(str(path), manifest)
            resumed_skipped = []
            try:
                resumed = run_scenario_suite(
                    scenarios,
                    samples=SAMPLES,
                    seed=SEED,
                    chunk_size=CHUNK,
                    store=store,
                    skip_inapplicable=True,
                    skipped=resumed_skipped,
                    policy=FAST,
                )
            finally:
                store.close()
            assert len(resumed) == 1
            assert len(resumed_skipped) == 1
            assert [row.record() for row in resumed] == [
                row.record() for row in rows
            ]
            assert path.read_bytes() == first_bytes
        finally:
            os.environ.update(saved)

"""Smoke tests for the public API surface.

A downstream user should be able to rely on everything exported through
``repro.__all__`` and the subpackage ``__all__`` lists; these tests pin that
surface so accidental removals show up as failures rather than as import
errors in user code.
"""

import importlib

import pytest

import repro


PUBLIC_SUBPACKAGES = [
    "repro.graphs",
    "repro.core",
    "repro.faults",
    "repro.network",
    "repro.analysis",
    "repro.results",
    "repro.runtime",
    "repro.scenarios",
    "repro.serialization",
    "repro.serving",
    "repro.cli",
]


class TestTopLevelApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points_importable(self):
        assert callable(repro.build_routing)
        assert callable(repro.surviving_diameter)
        assert callable(repro.kernel_routing)
        assert callable(repro.tricircular_routing)

    def test_docstring_mentions_paper(self):
        assert "Peleg" in repro.__doc__
        assert "Simons" in repro.__doc__


@pytest.mark.parametrize("module_name", PUBLIC_SUBPACKAGES)
class TestSubpackages:
    def test_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    def test_all_lists_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


class TestConstructionRegistry:
    def test_every_strategy_maps_to_callable(self):
        from repro.core import STRATEGIES

        for name, factory in STRATEGIES.items():
            assert callable(factory), name

    def test_auto_order_complete(self):
        from repro.core import AUTO_ORDER, STRATEGIES

        # Every single-routing scheme that can be auto-selected is present.
        assert set(AUTO_ORDER) <= set(STRATEGIES)
        assert "kernel" in AUTO_ORDER  # the universal fallback stays last
        assert AUTO_ORDER[-1] == "kernel"

    def test_exception_hierarchy(self):
        from repro import exceptions

        assert issubclass(exceptions.GraphError, exceptions.ReproError)
        assert issubclass(exceptions.RoutingError, exceptions.ReproError)
        assert issubclass(exceptions.ConstructionError, exceptions.RoutingError)
        assert issubclass(exceptions.PropertyNotSatisfiedError, exceptions.ConstructionError)
        assert issubclass(exceptions.FaultModelError, exceptions.ReproError)
        assert issubclass(exceptions.ServingError, exceptions.ReproError)
        assert issubclass(exceptions.ArtifactError, exceptions.ServingError)
        assert issubclass(exceptions.SimulationError, exceptions.ReproError)
        assert issubclass(exceptions.DeliveryError, exceptions.SimulationError)
        assert issubclass(exceptions.NodeNotFoundError, KeyError)

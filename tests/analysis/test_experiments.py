"""Unit tests for the experiment runner."""

import pytest

from repro.analysis import ExperimentRunner
from repro.core import kernel_routing, circular_routing
from repro.faults import FaultSet
from repro.graphs import generators


class TestExperimentRunner:
    def test_single_run_record_fields(self):
        runner = ExperimentRunner()
        graph = generators.cycle_graph(10)
        record = runner.run("E01", graph, lambda g: kernel_routing(g))
        assert record.experiment == "E01"
        assert record.graph_name == "cycle-10"
        assert record.nodes == 10
        assert record.scheme == "kernel"
        assert record.holds
        assert record.elapsed_seconds >= 0
        assert runner.records == [record]

    def test_bound_override(self):
        runner = ExperimentRunner()
        graph = generators.cycle_graph(10)
        record = runner.run(
            "E01/Theorem3",
            graph,
            lambda g: kernel_routing(g),
            max_faults=1,
            diameter_bound=4,
        )
        assert record.max_faults == 1
        assert record.paper_bound == 4
        assert record.holds

    def test_explicit_fault_sets(self):
        runner = ExperimentRunner()
        graph = generators.cycle_graph(10)
        record = runner.run(
            "E03",
            graph,
            lambda g: circular_routing(g),
            fault_sets=[FaultSet(()), FaultSet({0})],
        )
        assert record.fault_sets_evaluated == 2
        assert not record.exhaustive

    def test_rows_and_all_hold(self):
        runner = ExperimentRunner()
        graph = generators.cycle_graph(10)
        runner.run("A", graph, lambda g: kernel_routing(g))
        runner.run("B", graph, lambda g: circular_routing(g))
        rows = runner.rows()
        assert len(rows) == 2
        assert {row["experiment"] for row in rows} == {"A", "B"}
        assert runner.all_hold()

    def test_violation_detected(self):
        runner = ExperimentRunner()
        graph = generators.cycle_graph(10)
        record = runner.run(
            "impossible",
            graph,
            lambda g: kernel_routing(g),
            diameter_bound=1,
            max_faults=1,
        )
        assert not record.holds
        assert not runner.all_hold()
        assert record.as_row()["ok"] == "NO"

    def test_worst_by_experiment(self):
        runner = ExperimentRunner()
        graph_small = generators.cycle_graph(9)
        graph_large = generators.cycle_graph(13)
        runner.run("same-id", graph_small, lambda g: kernel_routing(g))
        runner.run("same-id", graph_large, lambda g: kernel_routing(g))
        worst = runner.worst_by_experiment()
        assert set(worst) == {"same-id"}
        assert worst["same-id"] >= 1

"""Unit tests for the report formatting helpers."""

from repro.analysis import bullet_list, format_comparison, format_table


class TestFormatTable:
    def test_basic_table(self):
        rows = [
            {"graph": "cycle-12", "n": 12, "worst": 3},
            {"graph": "hypercube-4", "n": 16, "worst": 4},
        ]
        text = format_table(rows, caption="Experiment E01")
        lines = text.splitlines()
        assert lines[0] == "Experiment E01"
        assert "graph" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "cycle-12" in text
        assert "hypercube-4" in text

    def test_column_order_respected(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert format_table([], caption="cap").startswith("cap")

    def test_float_rendering(self):
        rows = [{"value": 3.14159}, {"value": float("inf")}, {"value": 2.0}]
        text = format_table(rows)
        assert "3.142" in text
        assert "inf" in text
        assert "2" in text

    def test_missing_cell_rendered_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert "3" in text

    def test_alignment_widths(self):
        rows = [{"name": "x", "value": 123456}]
        lines = format_table(rows).splitlines()
        assert len(lines[0]) == len(lines[1])


class TestOtherFormatters:
    def test_format_comparison(self):
        line = format_comparison("Theorem 4", 4, 3, note="exhaustive")
        assert "Theorem 4" in line
        assert "paper bound = 4" in line
        assert "measured worst = 3" in line
        assert "exhaustive" in line

    def test_format_comparison_no_note(self):
        assert "(" not in format_comparison("X", 1, 1)

    def test_bullet_list(self):
        text = bullet_list(["one", "two"])
        assert text.splitlines() == ["  * one", "  * two"]

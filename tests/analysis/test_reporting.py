"""Unit tests for the report formatting helpers."""

import pytest

from repro.analysis import (
    bullet_list,
    format_comparison,
    format_table,
    render_csv_table,
    render_markdown_table,
    render_scaling_report,
    scaling_table,
)
from repro.results import result_frame


class TestFormatTable:
    def test_basic_table(self):
        rows = [
            {"graph": "cycle-12", "n": 12, "worst": 3},
            {"graph": "hypercube-4", "n": 16, "worst": 4},
        ]
        text = format_table(rows, caption="Experiment E01")
        lines = text.splitlines()
        assert lines[0] == "Experiment E01"
        assert "graph" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "cycle-12" in text
        assert "hypercube-4" in text

    def test_column_order_respected(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert format_table([], caption="cap").startswith("cap")

    def test_float_rendering(self):
        rows = [{"value": 3.14159}, {"value": float("inf")}, {"value": 2.0}]
        text = format_table(rows)
        assert "3.142" in text
        assert "inf" in text
        assert "2" in text

    def test_missing_cell_rendered_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert "3" in text

    def test_alignment_widths(self):
        rows = [{"name": "x", "value": 123456}]
        lines = format_table(rows).splitlines()
        assert len(lines[0]) == len(lines[1])


def _exact_frame():
    return result_frame(
        [
            {"kind": "exact", "family": "hypercube", "n": 8, "t": 1, "worst_diam": 3.0},
            {"kind": "exact", "family": "hypercube", "n": 8, "t": 2, "worst_diam": 4.0},
            {"kind": "exact", "family": "hypercube", "n": 16, "t": 1, "worst_diam": 4.0},
            {"kind": "exact", "family": "torus", "n": 12, "t": 1, "worst_diam": 6.0},
            # Two campaigns in one cell: the table keeps the worst.
            {"kind": "exact", "family": "torus", "n": 12, "t": 1, "worst_diam": 7.0},
        ]
    )


def _decision_frame():
    return result_frame(
        [
            {"kind": "decision", "family": "hypercube", "n": 8, "t": 1, "pass_rate": 1.0},
            {"kind": "decision", "family": "hypercube", "n": 8, "t": 1, "pass_rate": 0.9},
            {"kind": "decision", "family": "hypercube", "n": 16, "t": 2, "pass_rate": 0.5},
        ]
    )


class TestScalingTable:
    def test_exact_frame_pivots_mean_and_worst_diameter(self):
        rows, columns, metric = scaling_table(_exact_frame())
        assert metric == "surviving diameter, mean ± worst"
        assert columns == ["family", "n", "t=1", "t=2"]
        # Sorted by family then size; cells fold into (mean, worst).
        assert rows[0] == {
            "family": "hypercube", "n": 8, "t=1": (3.0, 3.0), "t=2": (4.0, 4.0)
        }
        assert rows[1] == {
            "family": "hypercube", "n": 16, "t=1": (4.0, 4.0), "t=2": None
        }
        assert rows[2] == {
            "family": "torus", "n": 12, "t=1": (6.5, 7.0), "t=2": None
        }

    def test_decision_frame_pivots_mean_and_weakest_pass_rate(self):
        rows, columns, metric = scaling_table(_decision_frame())
        assert metric == "pass rate, mean ± worst"
        assert rows[0]["t=1"] == (0.95, 0.9)  # mean, min across the cell
        assert rows[1]["t=2"] == (0.5, 0.5)

    def test_empty_frame(self):
        rows, columns, metric = scaling_table(result_frame())
        assert rows == []
        assert columns == ["family", "n"]

    def test_multi_strategy_frame_uses_comparison_layout(self):
        frame = result_frame(
            [
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "strategy": "kernel", "worst_diam": 4.0},
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "strategy": "kernel", "worst_diam": 6.0},
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "strategy": "circular", "worst_diam": 5.0},
                {"kind": "exact", "family": "cycle", "n": 12, "t": 1,
                 "strategy": "kernel", "worst_diam": 7.0},
            ]
        )
        rows, columns, _ = scaling_table(frame)
        # Strategy groups sorted by name, each crossed with t.
        assert columns == ["family", "n", "circular t=1", "kernel t=1"]
        assert rows[0] == {
            "family": "cycle", "n": 10,
            "circular t=1": (5.0, 5.0), "kernel t=1": (5.0, 6.0),
        }
        # circular never ran at n=12: an empty comparison cell, not an error.
        assert rows[1]["circular t=1"] is None

    def test_auto_strategy_compares_under_built_scheme(self):
        frame = result_frame(
            [
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "strategy": "auto", "scheme": "circular", "worst_diam": 5.0},
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "strategy": "kernel", "scheme": "kernel", "worst_diam": 4.0},
            ]
        )
        rows, columns, _ = scaling_table(frame)
        assert columns == ["family", "n", "circular t=1", "kernel t=1"]

    def test_strategyless_rows_group_under_unspecified(self):
        # Bare engine campaigns carry neither strategy nor scheme; in a
        # comparison frame they group under "unspecified", not None.
        frame = result_frame(
            [
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "strategy": "kernel", "worst_diam": 4.0},
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "strategy": "circular", "worst_diam": 5.0},
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "worst_diam": 6.0},
            ]
        )
        _, columns, _ = scaling_table(frame)
        assert columns == [
            "family", "n", "circular t=1", "kernel t=1", "unspecified t=1"
        ]

    def test_single_strategy_frame_keeps_plain_columns(self):
        frame = result_frame(
            [
                {"kind": "exact", "family": "cycle", "n": 10, "t": 1,
                 "strategy": "kernel", "worst_diam": 4.0},
                {"kind": "exact", "family": "cycle", "n": 12, "t": 2,
                 "strategy": "kernel", "worst_diam": 5.0},
            ]
        )
        _, columns, _ = scaling_table(frame)
        assert columns == ["family", "n", "t=1", "t=2"]


class TestStatusAnnotations:
    def test_inapplicable_cell_annotated_na(self):
        frame = result_frame(
            [
                {"kind": "exact", "family": "hypercube", "n": 8, "t": 1,
                 "worst_diam": 3.0},
                {"kind": "status", "disposition": "inapplicable",
                 "reason": "no separating set", "family": "hypercube",
                 "n": 8, "t": 2},
            ]
        )
        rows, columns, _metric = scaling_table(frame)
        assert columns == ["family", "n", "t=1", "t=2"]
        assert rows[0]["t=1"] == (3.0, 3.0)
        assert rows[0]["t=2"] == "n/a"

    def test_failed_cell_annotated_failed(self):
        frame = result_frame(
            [
                {"kind": "exact", "family": "torus", "n": 12, "t": 1,
                 "worst_diam": 5.0},
                {"kind": "status", "disposition": "failed",
                 "reason": "task timed out", "family": "torus", "n": 16,
                 "t": 1},
            ]
        )
        rows, _columns, _metric = scaling_table(frame)
        assert rows[0]["t=1"] == (5.0, 5.0)
        assert rows[1] == {"family": "torus", "n": 16, "t=1": "failed"}

    def test_status_only_strategy_still_shapes_comparison_columns(self):
        # A strategy swept but inapplicable everywhere must still appear
        # as a column group, annotated, not silently vanish.
        frame = result_frame(
            [
                {"kind": "exact", "family": "hypercube", "n": 8,
                 "strategy": "kernel", "t": 1, "worst_diam": 3.0},
                {"kind": "status", "disposition": "inapplicable",
                 "reason": "does not apply", "family": "hypercube", "n": 8,
                 "strategy": "circular", "t": 1},
            ]
        )
        rows, columns, _metric = scaling_table(frame)
        assert columns == ["family", "n", "circular t=1", "kernel t=1"]
        assert rows[0]["circular t=1"] == "n/a"
        assert rows[0]["kernel t=1"] == (3.0, 3.0)

    def test_partial_cell_keeps_its_aggregate(self):
        # One campaign of the cell failed, one succeeded: the fold over
        # what ran wins over the annotation.
        frame = result_frame(
            [
                {"kind": "exact", "family": "torus", "n": 12, "t": 1,
                 "worst_diam": 5.0},
                {"kind": "status", "disposition": "failed",
                 "reason": "boom", "family": "torus", "n": 12, "t": 1},
            ]
        )
        rows, _columns, _metric = scaling_table(frame)
        assert rows[0]["t=1"] == (5.0, 5.0)

    def test_failed_outranks_inapplicable_on_shared_cell(self):
        frame = result_frame(
            [
                {"kind": "status", "disposition": "inapplicable",
                 "reason": "n/a", "family": "torus", "n": 12, "t": 1},
                {"kind": "status", "disposition": "failed",
                 "reason": "boom", "family": "torus", "n": 12, "t": 1},
            ]
        )
        rows, _columns, _metric = scaling_table(frame)
        assert rows[0]["t=1"] == "failed"

    def test_report_footer_counts_status_rows(self):
        frame = result_frame(
            [
                {"kind": "exact", "family": "torus", "n": 12, "t": 1,
                 "worst_diam": 5.0},
                {"kind": "status", "disposition": "failed",
                 "reason": "boom", "family": "torus", "n": 16, "t": 1},
                {"kind": "status", "disposition": "inapplicable",
                 "reason": "nope", "family": "torus", "n": 20, "t": 1},
            ]
        )
        report = render_scaling_report(frame)
        assert "Campaign rows: 3 (1 failed, 1 not applicable)" in report

    def test_clean_frame_footer_unchanged(self):
        report = render_scaling_report(_exact_frame())
        assert "Campaign rows: 5" in report
        assert "failed" not in report
        assert "not applicable" not in report


class TestRenderers:
    def test_markdown_table_shape(self):
        rows, columns, _ = scaling_table(_exact_frame())
        text = render_markdown_table(rows, columns, caption="Scaling")
        lines = text.splitlines()
        assert lines[0] == "Scaling"
        assert lines[2].startswith("| family | n | t=1 | t=2 |")
        assert set(lines[3].replace("|", "").split()) == {"---"}
        # Single-campaign cells collapse to one number; multi-campaign cells
        # show mean ± worst; missing cells render "-".
        assert "| hypercube | 8 | 3 | 4 |" in text
        assert "| torus | 12 | 6.5 ± 7 | - |" in text

    def test_markdown_no_rows(self):
        assert "(no rows)" in render_markdown_table([], ["a"])

    def test_csv_table(self):
        rows, columns, _ = scaling_table(_exact_frame())
        text = render_csv_table(rows, columns)
        lines = text.splitlines()
        assert lines[0] == "family,n,t=1,t=2"
        assert "torus,12,6.5 ± 7,-" in lines

    def test_scaling_report_markdown_is_deterministic(self):
        run = {"scenarios": ["hypercube:d=3/kernel/sizes:1"], "samples": 4, "seed": 7}
        first = render_scaling_report(_exact_frame(), run)
        second = render_scaling_report(_exact_frame(), run)
        assert first == second
        assert first.startswith("# Scaling report")
        assert "samples=4" in first
        assert "surviving diameter, mean ± worst" in first

    def test_scaling_report_csv_format(self):
        text = render_scaling_report(_exact_frame(), fmt="csv")
        assert text.splitlines()[0] == "family,n,t=1,t=2"

    def test_scaling_report_unknown_format(self):
        with pytest.raises(ValueError):
            render_scaling_report(_exact_frame(), fmt="html")

    def test_infinite_cells_render_as_inf(self):
        frame = result_frame(
            [{"kind": "exact", "family": "x", "n": 4, "t": 1,
              "worst_diam": float("inf")}]
        )
        rows, columns, _ = scaling_table(frame)
        assert "| inf |" in render_markdown_table(rows, columns)


class TestExperimentFrame:
    def test_experiment_records_fit_the_frame(self):
        from repro.analysis import ExperimentRunner
        from repro.core import build_routing
        from repro.graphs import generators

        runner = ExperimentRunner(seed=0)
        runner.run("E-test", generators.hypercube_graph(3), build_routing)
        frame = runner.frame()
        assert len(frame) == 1
        row = frame.row(0)
        assert row["source"] == "experiment"
        assert row["kind"] == "decision"
        assert row["violations"] == 0  # the construction holds
        assert row["worst_diam"] <= row["bound"]


class TestOtherFormatters:
    def test_format_comparison(self):
        line = format_comparison("Theorem 4", 4, 3, note="exhaustive")
        assert "Theorem 4" in line
        assert "paper bound = 4" in line
        assert "measured worst = 3" in line
        assert "exhaustive" in line

    def test_format_comparison_no_note(self):
        assert "(" not in format_comparison("X", 1, 1)

    def test_bullet_list(self):
        text = bullet_list(["one", "two"])
        assert text.splitlines() == ["  * one", "  * two"]

"""Unit tests for the degree-threshold analysis (Lemma 15 / Corollary 17)."""

import pytest

from repro.analysis import (
    CIRCULAR_CONSTANT,
    TRICIRCULAR_CONSTANT,
    evaluate_degree_bounds,
    minimum_size_for_circular,
    minimum_size_for_tricircular,
)
from repro.graphs import generators, synthetic


class TestEvaluateDegreeBounds:
    def test_long_cycle_within_bounds(self):
        record = evaluate_degree_bounds(generators.cycle_graph(100), t=1)
        assert record.max_degree == 2
        assert record.within_circular_bound
        assert record.within_tricircular_bound
        assert record.greedy_found >= record.lemma15_guarantee
        assert record.circular_applicable
        assert record.tricircular_applicable

    def test_small_dense_graph_outside_bounds(self):
        record = evaluate_degree_bounds(generators.complete_graph(8), t=7)
        assert not record.within_circular_bound
        assert not record.within_tricircular_bound
        assert not record.circular_applicable

    def test_default_t_uses_max_degree(self):
        record = evaluate_degree_bounds(generators.cycle_graph(30))
        assert record.t == 1  # max degree 2 minus 1

    def test_thresholds_use_published_constants(self):
        graph = generators.cycle_graph(64)
        record = evaluate_degree_bounds(graph, t=1)
        assert record.circular_threshold == pytest.approx(CIRCULAR_CONSTANT * 4)
        assert record.tricircular_threshold == pytest.approx(TRICIRCULAR_CONSTANT * 4)

    def test_as_row(self):
        record = evaluate_degree_bounds(generators.cycle_graph(30), t=1)
        row = record.as_row()
        assert row["graph"] == "cycle-30"
        assert row["circ_bound_ok"] == "yes"

    def test_flower_graph_applicability(self):
        graph, _ = synthetic.flower_graph(t=1, k=15)
        record = evaluate_degree_bounds(graph, t=1)
        # The flower graph is engineered to have a 15-node neighbourhood set,
        # which is what the tri-circular routing needs for t=1.
        assert record.greedy_found >= record.tricircular_required

    def test_guarantee_vs_corollary_implication(self):
        """Whenever the Lemma 15 guarantee alone exceeds the required K, the
        greedy set must be large enough too (the corollary's mechanism)."""
        for graph, t in [
            (generators.cycle_graph(200), 1),
            (generators.grid_graph(12, 12), 1),
            (generators.torus_graph(10, 10), 3),
        ]:
            record = evaluate_degree_bounds(graph, t=t)
            if record.lemma15_guarantee >= record.circular_required:
                assert record.circular_applicable
            if record.lemma15_guarantee >= record.tricircular_required:
                assert record.tricircular_applicable


class TestThresholdFormulas:
    def test_circular_minimum_size(self):
        assert minimum_size_for_circular(2, 1) == 8 + 4 + 2 + 1

    def test_tricircular_minimum_size(self):
        assert minimum_size_for_tricircular(2, 1) == 6 * 8 + 3 * 4 + 6 * 2 + 3

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_size_for_circular(0, 1)
        with pytest.raises(ValueError):
            minimum_size_for_circular(2, -1)
        with pytest.raises(ValueError):
            minimum_size_for_tricircular(0, 1)
        with pytest.raises(ValueError):
            minimum_size_for_tricircular(2, -1)

    def test_corollary17_consistency(self):
        """For n above the Theorem 16 threshold the counting argument closes:
        ceil(n/(d^2+1)) >= d + 1 >= t + 2."""
        import math

        d, t = 3, 2
        n = minimum_size_for_circular(d, t)
        assert math.ceil(n / (d * d + 1)) >= t + 2

"""Unit tests for the Lemma 24 / Theorem 25 random-graph analysis."""

import pytest

from repro.analysis import (
    fixed_pair_is_good,
    lemma24_bad_probability_bound,
    sample_two_trees_probability,
    sweep_two_trees,
)
from repro.graphs import Graph, generators


class TestFixedPairPredicate:
    def test_good_pair_on_long_cycle(self):
        graph = generators.cycle_graph(20)
        assert fixed_pair_is_good(graph, 0, 10)

    def test_close_pair_rejected(self):
        graph = generators.cycle_graph(20)
        assert not fixed_pair_is_good(graph, 0, 2)

    def test_pair_on_short_cycle_rejected(self):
        graph = generators.complete_graph(6)
        assert not fixed_pair_is_good(graph, 0, 1)

    def test_missing_nodes(self):
        graph = Graph(nodes=[5, 6])
        assert not fixed_pair_is_good(graph, 0, 1)

    def test_default_pair_is_0_1(self):
        # Disconnected pair: distance infinite >= 4 and no cycles -> good
        # provided the structural definition holds; build a graph where 0 and
        # 1 are far apart.
        graph = generators.path_graph(12)
        assert fixed_pair_is_good(graph, 0, 11)


class TestLemma24Bound:
    def test_sparse_bound_small(self):
        bound = lemma24_bad_probability_bound(10000, 1.0 / 10000)
        assert 0 < bound < 0.05

    def test_dense_bound_saturates(self):
        assert lemma24_bad_probability_bound(100, 0.5) == 1.0

    def test_monotone_in_p(self):
        n = 500
        assert lemma24_bad_probability_bound(n, 0.001) <= lemma24_bad_probability_bound(n, 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma24_bad_probability_bound(0, 0.1)


class TestSampling:
    def test_sample_statistics_in_range(self):
        sample = sample_two_trees_probability(30, 0.05, samples=5, seed=1)
        assert 0.0 <= sample.fixed_pair_good <= 1.0
        assert 0.0 <= sample.some_pair_good <= 1.0
        assert sample.fixed_pair_good <= sample.some_pair_good
        assert sample.samples == 5

    def test_sample_reproducible(self):
        first = sample_two_trees_probability(25, 0.06, samples=5, seed=3)
        second = sample_two_trees_probability(25, 0.06, samples=5, seed=3)
        assert first.fixed_pair_good == second.fixed_pair_good
        assert first.some_pair_good == second.some_pair_good

    def test_skip_all_pair_search(self):
        sample = sample_two_trees_probability(
            25, 0.06, samples=3, seed=2, search_all_pairs=False
        )
        assert sample.some_pair_good != sample.some_pair_good  # NaN

    def test_as_row(self):
        sample = sample_two_trees_probability(20, 0.05, samples=3, seed=0)
        row = sample.as_row()
        assert row["n"] == 20
        assert "lemma24_bad_bound" in row

    def test_dense_graph_rarely_good(self):
        # Dense G(n, p): triangles everywhere, the property almost never holds.
        sample = sample_two_trees_probability(20, 0.5, samples=4, seed=0)
        assert sample.some_pair_good <= 0.25


class TestSweep:
    def test_sweep_sizes_and_regime(self):
        samples = sweep_two_trees([20, 30], c=1.0, eps=0.2, samples=3, seed=1)
        assert [s.n for s in samples] == [20, 30]
        for sample in samples:
            assert sample.p <= 1.0

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            sweep_two_trees([10], eps=-1, samples=1)

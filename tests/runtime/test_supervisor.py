"""Unit tests for the supervised pool dispatcher and hardened shutdown.

Worker functions live at module level so the fork start method can pickle
them by reference.  Cross-process coordination (fail exactly N times, die
exactly once) uses ``O_CREAT | O_EXCL`` marker files in a shared temporary
directory — the same once-only idiom the chaos ledger uses.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.runtime import (
    FailedTask,
    Supervisor,
    SupervisorPolicy,
    TaskFailedError,
    shutdown_pool,
)

#: Fast-retry policy shared by most tests (no real sleeping).
FAST = SupervisorPolicy(backoff_base=0.001, backoff_max=0.002)


def _claim(directory, name):
    """Atomically claim a marker file; True when this call got it."""
    try:
        fd = os.open(
            os.path.join(directory, name),
            os.O_CREAT | os.O_EXCL | os.O_WRONLY,
        )
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _square(task):
    return task * task


def _flaky(task):
    """Fail ``fails`` times across all processes, then succeed."""
    value, fails, directory = task
    for attempt in range(fails):
        if _claim(directory, f"flaky-{value}-{attempt}"):
            raise RuntimeError(f"transient failure {attempt} for {value}")
    return value * value


def _poison(task):
    raise ValueError(f"poisoned task {task}")


def _suicide_once(task):
    """SIGKILL the executing worker the first time this task value runs."""
    value, directory = task
    if _claim(directory, f"suicide-{value}"):
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _hang_forever(task):
    value = task[0] if isinstance(task, tuple) else task
    if value == "hang":
        time.sleep(600)
    return value


def _ignore_sigterm():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


def _sleep_forever(_task):
    time.sleep(600)


class _PoolHarness:
    """ensure/rebuild callbacks over a real multiprocessing.Pool."""

    def __init__(self, workers=2, initializer=None):
        self.workers = workers
        self.initializer = initializer
        self.pool = None

    def ensure(self):
        if self.pool is None:
            self.pool = multiprocessing.Pool(
                self.workers, initializer=self.initializer
            )
        return self.pool

    def rebuild(self):
        shutdown_pool(self.pool, grace=2.0)
        self.pool = None
        return self.ensure()

    def close(self):
        shutdown_pool(self.pool, grace=2.0)
        self.pool = None


@pytest.fixture
def harness():
    h = _PoolHarness()
    yield h
    h.close()


def run_supervised(supervisor, tasks):
    return list(supervisor.run(tasks))


class TestLocalPath:
    def test_results_in_order(self):
        sup = Supervisor(_square, policy=FAST, workers=1)
        assert run_supervised(sup, [3, 1, 4]) == [(3, 9), (1, 1), (4, 16)]
        assert sup.stats["tasks"] == 3
        assert sup.stats["retries"] == 0

    def test_retry_until_success(self, tmp_path):
        sup = Supervisor(_flaky, policy=FAST, workers=1)
        tasks = [(5, 2, str(tmp_path))]
        assert run_supervised(sup, tasks) == [(tasks[0], 25)]
        assert sup.stats["retries"] == 2
        assert sup.stats["quarantined"] == 0

    def test_quarantine_after_budget(self):
        sup = Supervisor(
            _poison, policy=SupervisorPolicy(max_retries=1, backoff_base=0.001)
        )
        ((task, result),) = run_supervised(sup, ["bad"])
        assert isinstance(result, FailedTask)
        assert result.attempts == 2
        assert "poisoned task bad" in result.reason
        assert sup.stats["quarantined"] == 1

    def test_strict_restores_fail_fast(self):
        sup = Supervisor(
            _poison,
            policy=SupervisorPolicy(
                max_retries=0, strict=True, backoff_base=0.001
            ),
        )
        with pytest.raises(TaskFailedError, match="poisoned task"):
            run_supervised(sup, ["bad"])

    def test_backoff_is_bounded(self):
        policy = SupervisorPolicy(
            backoff_base=0.1, backoff_factor=10.0, backoff_max=0.5
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.5)
        assert policy.backoff(9) == pytest.approx(0.5)


class TestPooledPath:
    def test_clean_run_preserves_order(self, harness):
        sup = Supervisor(
            _square,
            ensure_pool=harness.ensure,
            rebuild_pool=harness.rebuild,
            policy=FAST,
            workers=2,
        )
        tasks = list(range(20))
        assert run_supervised(sup, tasks) == [(t, t * t) for t in tasks]
        assert sup.stats["rebuilds"] == 0
        assert sup.stats["degraded"] == 0

    def test_task_exception_retries_in_worker(self, harness, tmp_path):
        sup = Supervisor(
            _flaky,
            ensure_pool=harness.ensure,
            rebuild_pool=harness.rebuild,
            policy=FAST,
            workers=2,
        )
        tasks = [(v, 1 if v == 3 else 0, str(tmp_path)) for v in range(6)]
        assert run_supervised(sup, tasks) == [(t, t[0] * t[0]) for t in tasks]
        assert sup.stats["retries"] == 1

    def test_worker_sigkill_recovers_and_completes(self, harness, tmp_path):
        sup = Supervisor(
            _suicide_once,
            ensure_pool=harness.ensure,
            rebuild_pool=harness.rebuild,
            policy=FAST,
            workers=2,
        )
        tasks = [(v, str(tmp_path)) for v in range(6)]
        # Only task value 2 kills its worker (and only once).
        for value, _ in tasks:
            if value != 2:
                _claim(str(tmp_path), f"suicide-{value}")
        assert run_supervised(sup, tasks) == [(t, t[0] * t[0]) for t in tasks]
        assert sup.stats["worker_deaths"] >= 1

    def test_timeout_quarantines_and_rest_completes(self, harness):
        sup = Supervisor(
            _hang_forever,
            ensure_pool=harness.ensure,
            rebuild_pool=harness.rebuild,
            policy=SupervisorPolicy(
                task_timeout=0.4, max_retries=0, backoff_base=0.001
            ),
            workers=2,
        )
        results = run_supervised(sup, ["a", "hang", "b"])
        assert results[0] == ("a", "a")
        assert results[2] == ("b", "b")
        task, failed = results[1]
        assert task == "hang"
        assert isinstance(failed, FailedTask)
        assert "timed out" in failed.reason
        assert sup.stats["timeouts"] == 1
        assert sup.stats["rebuilds"] >= 1

    def test_unbuildable_pool_degrades_to_inprocess(self):
        def broken_pool():
            raise OSError("no forks today")

        sup = Supervisor(
            _square, ensure_pool=broken_pool, policy=FAST, workers=2
        )
        assert run_supervised(sup, [2, 3]) == [(2, 4), (3, 9)]
        assert sup.stats["degraded"] == 1

    def test_degradation_disabled_raises(self):
        def broken_pool():
            raise OSError("no forks today")

        sup = Supervisor(
            _square,
            ensure_pool=broken_pool,
            policy=SupervisorPolicy(fallback_inprocess=False),
            workers=2,
        )
        with pytest.raises(TaskFailedError, match="could not be rebuilt"):
            run_supervised(sup, [2, 3])

    def test_degraded_mode_uses_local_fn(self):
        def broken_pool():
            raise OSError("no forks today")

        sup = Supervisor(
            _poison,
            ensure_pool=broken_pool,
            local_fn=_square,
            policy=FAST,
            workers=2,
        )
        assert run_supervised(sup, [4]) == [(4, 16)]


class TestShutdownPool:
    def test_none_is_a_no_op(self):
        shutdown_pool(None)

    def test_duck_typed_pool_without_workers(self):
        class FakePool:
            def __init__(self):
                self.calls = []

            def terminate(self):
                self.calls.append("terminate")

            def join(self):
                self.calls.append("join")

        fake = FakePool()
        shutdown_pool(fake)
        assert fake.calls == ["terminate", "join"]

    def test_escalates_to_kill_on_sigterm_immune_workers(self):
        pool = multiprocessing.Pool(1, initializer=_ignore_sigterm)
        pool.apply_async(_sleep_forever, (None,))
        time.sleep(0.3)  # let the worker start sleeping
        workers = list(pool._pool)
        start = time.monotonic()
        shutdown_pool(pool, grace=1.0)
        elapsed = time.monotonic() - start
        assert elapsed < 10.0
        for process in workers:
            assert not process.is_alive()

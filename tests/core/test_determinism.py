"""Construction-determinism regression tests.

The ROADMAP tracked a pre-existing bug: ``kernel_routing`` (and with it every
construction resting on the max-flow substrate) built a different — equally
valid — routing per interpreter run because set iteration leaked hash order
into the flow network's augmenting-path choices.  The graph substrate is now
insertion-ordered end to end, so the same spec must produce bit-for-bit the
same routing under any ``PYTHONHASHSEED``.  These tests verify exactly that
by comparing routing fingerprints across subprocesses with different hash
seeds — an in-process test cannot catch the regression because the hash seed
is fixed per interpreter.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

#: Scenario strings covering >= 5 distinct graph families and several
#: construction schemes (kernel, circular, bipolar, auto).
FINGERPRINT_SCENARIOS = [
    "hypercube:d=4/kernel",
    "butterfly:d=3/kernel",
    "debruijn:base=2,d=4/kernel",
    "circulant:n=24,offsets=1+2/kernel",
    "flower:t=2,k=9/circular",
    "two-trees:t=1/bipolar-uni",
    "kernel-test:t=2/kernel",
    "petersen/auto",
]

_SCRIPT = """
import sys
from repro.scenarios import parse_scenario

for spec in sys.argv[1:]:
    graph, result = parse_scenario(spec).build()
    print(spec, result.fingerprint())
"""


def _fingerprints(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = REPO_SRC + (os.pathsep + existing if existing else "")
    completed = subprocess.run(
        [sys.executable, "-c", _SCRIPT, *FINGERPRINT_SCENARIOS],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return completed.stdout


class TestConstructionDeterminism:
    def test_fingerprints_identical_across_hash_seeds(self):
        """Two interpreter runs with different hash seeds agree exactly."""
        first = _fingerprints("1")
        second = _fingerprints("2")
        assert first == second
        # Sanity: every scenario actually produced a fingerprint line.
        assert len(first.strip().splitlines()) == len(FINGERPRINT_SCENARIOS)

    def test_fingerprint_is_content_addressed(self):
        """Same routing content => same fingerprint; different => different."""
        from repro.core import kernel_routing
        from repro.graphs import generators

        graph = generators.hypercube_graph(3)
        a = kernel_routing(graph)
        b = kernel_routing(graph)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() == a.routing.fingerprint()
        other = kernel_routing(generators.hypercube_graph(4))
        assert a.fingerprint() != other.fingerprint()

    def test_fingerprint_recorded_in_details(self):
        from repro.core import kernel_routing
        from repro.graphs import generators

        result = kernel_routing(generators.hypercube_graph(3))
        digest = result.fingerprint()
        assert result.details["fingerprint"] == digest

    @pytest.mark.parametrize("spec", FINGERPRINT_SCENARIOS[:4])
    def test_repeated_in_process_builds_agree(self, spec):
        from repro.scenarios import parse_scenario

        scenario = parse_scenario(spec)
        _, first = scenario.build()
        _, second = scenario.build()
        assert first.fingerprint() == second.fingerprint()

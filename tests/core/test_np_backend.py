"""Backend selection, numpy fallback, worker shipping, and cursor memoisation.

Covers the plumbing around the packed-uint64 numpy backend rather than its
arithmetic (that is the hypothesis suite's job): how ``backend=`` / the
``REPRO_EVAL_BACKEND`` env var / ``REPRO_NO_NUMPY`` resolve, that the
resolved tunables survive pickling and ``slim()`` shipping unchanged (so
workers never re-read the environment), and the ``EvalCursor`` lower-bound
memoisation added alongside the backend (a failed ``diameter(cap=...)``
must not be forgotten).
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro.core import RouteIndex, kernel_routing
from repro.core.np_kernel import numpy_available
from repro.core.route_index import (
    EVAL_BACKEND_BITSET,
    EVAL_BACKEND_NUMPY,
)
from repro.faults.adversary import random_fault_sets
from repro.graphs import generators
from repro.graphs.traversal import INFINITY

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not available"
)


@pytest.fixture(scope="module")
def workload():
    graph = generators.circulant_graph(20, [1, 2])
    result = kernel_routing(graph)
    return graph, result.routing


class TestBackendResolution:
    def test_default_is_bitset(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        assert index.backend == EVAL_BACKEND_BITSET
        assert index.eval_backend == EVAL_BACKEND_BITSET

    def test_constructor_argument_wins_over_env(self, workload, monkeypatch):
        graph, routing = workload
        monkeypatch.setenv("REPRO_EVAL_BACKEND", "numpy")
        index = RouteIndex(graph, routing, backend="bitset")
        assert index.backend == EVAL_BACKEND_BITSET

    def test_env_override(self, workload, monkeypatch):
        graph, routing = workload
        monkeypatch.setenv("REPRO_EVAL_BACKEND", "numpy")
        assert RouteIndex(graph, routing).backend == EVAL_BACKEND_NUMPY

    def test_invalid_backend_rejected(self, workload, monkeypatch):
        graph, routing = workload
        with pytest.raises(ValueError, match="unknown eval backend"):
            RouteIndex(graph, routing, backend="cuda")
        monkeypatch.setenv("REPRO_EVAL_BACKEND", "cuda")
        with pytest.raises(ValueError, match="unknown eval backend"):
            RouteIndex(graph, routing)

    def test_auto_resolves_at_construction(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing, backend="auto")
        expected = EVAL_BACKEND_NUMPY if numpy_available() else EVAL_BACKEND_BITSET
        # "auto" never survives resolution: the stored backend is concrete.
        assert index.backend == expected

    def test_kill_switch_forces_bitset_evaluation(self, workload, monkeypatch):
        """REPRO_NO_NUMPY downgrades evaluation without changing values."""
        graph, routing = workload
        index = RouteIndex(graph, routing, backend="numpy")
        baseline = [
            index.surviving_diameter(faults)
            for faults in random_fault_sets(graph.nodes(), 2, 5, seed=11)
        ]
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert not numpy_available()
        # The construction-time choice is preserved; only this process's
        # effective kernel degrades.
        assert index.backend == EVAL_BACKEND_NUMPY
        assert index.eval_backend == EVAL_BACKEND_BITSET
        degraded = [
            index.surviving_diameter(faults)
            for faults in random_fault_sets(graph.nodes(), 2, 5, seed=11)
        ]
        assert degraded == baseline

    def test_explicit_numpy_kernel_unavailable_raises(self, workload, monkeypatch):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        with pytest.raises(ValueError, match="numpy"):
            index.surviving_diameter((), kernel="numpy")


@requires_numpy
class TestNumpyShipping:
    """The numpy kernel is process-local; shipped indexes rebuild it lazily."""

    def test_pickle_drops_np_kernel(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing, backend="numpy")
        faults = frozenset(list(graph.nodes())[:2])
        before = index.surviving_diameter(faults)
        assert index._np_kernel is not None  # warmed by the evaluation
        clone = pickle.loads(pickle.dumps(index))
        assert clone._np_kernel is None
        assert clone.backend == EVAL_BACKEND_NUMPY
        assert clone.surviving_diameter(faults) == before

    def test_slim_drops_np_kernel_and_keeps_tunables(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing, density_threshold=7, backend="numpy")
        faults = frozenset(list(graph.nodes())[:2])
        before = index.surviving_diameter(faults)
        slim = pickle.loads(pickle.dumps(index.slim()))
        assert slim.graph is None and slim.routing is None
        assert slim._np_kernel is None
        assert slim.density_threshold == 7
        assert slim.backend == EVAL_BACKEND_NUMPY
        assert slim.surviving_diameter(faults) == before

    def test_batch_api_matches_per_set(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing, backend="numpy")
        battery = list(random_fault_sets(graph.nodes(), 3, 12, seed=5))
        assert index.surviving_diameters(battery) == [
            index.surviving_diameter(faults) for faults in battery
        ]
        capped = index.surviving_diameters(battery, cap=2)
        for value, faults in zip(capped, battery):
            exact = index.surviving_diameter(faults)
            assert value == exact if exact <= 2 else value > 2


class TestTunablesResolveOnceInParent:
    """Workers must inherit parent-resolved tunables, never re-read the env."""

    def test_shipped_threshold_survives_divergent_worker_env(
        self, workload, tmp_path
    ):
        """Regression: a worker env override used to re-resolve the threshold.

        The parent resolves ``density_threshold`` at construction; a
        subprocess with a conflicting ``REPRO_BFS_DENSITY_THRESHOLD`` must
        still see the parent's value on the unpickled slim index.
        """
        graph, routing = workload
        index = RouteIndex(graph, routing, density_threshold=7, backend="bitset")
        payload = tmp_path / "index.pickle"
        payload.write_bytes(pickle.dumps(index.slim()))
        src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        env["REPRO_BFS_DENSITY_THRESHOLD"] = "999"
        env["REPRO_EVAL_BACKEND"] = "numpy"
        script = textwrap.dedent(
            f"""
            import pickle
            index = pickle.loads(open({str(payload)!r}, "rb").read())
            print(index.density_threshold, index.backend)
            """
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == ["7", "bitset"]

    def test_suite_task_tunables_override_worker_env(self, monkeypatch):
        """_scenario_workload honours stamped task tunables over the env."""
        from repro.scenarios.suite import _SCENARIO_CACHE, _scenario_workload

        monkeypatch.setenv("REPRO_BFS_DENSITY_THRESHOLD", "999")
        spec = "circulant:n=12,offsets=1+2/kernel"
        _SCENARIO_CACHE.clear()
        try:
            index, _ = _scenario_workload(spec, density_threshold=5, backend="bitset")
            assert index.density_threshold == 5
            assert index.backend == EVAL_BACKEND_BITSET
            # Historical path: no stamped tunables -> the worker env applies.
            legacy, _ = _scenario_workload(spec)
            assert legacy.density_threshold == 999
        finally:
            _SCENARIO_CACHE.clear()


class TestCursorLowerBoundMemoisation:
    """A failed diameter(cap=...) must inform later queries on the cursor."""

    @pytest.fixture(scope="class")
    def deep_cursor(self):
        """A cursor whose surviving diameter is at least 3.

        A cycle's kernel routing is total, so the fault-free route graph is
        complete; knocking out consecutive nodes forces long route detours.
        """
        graph = generators.circulant_graph(16, [1])
        result = kernel_routing(graph)
        index = RouteIndex(graph, result.routing)
        nodes = sorted(graph.nodes(), key=repr)
        faults = nodes[:3]
        exact = index.surviving_diameter(faults)
        assert exact >= 3, "fixture workload must have a deep surviving diameter"
        return index, faults, exact

    def test_failed_cap_is_memoised(self, deep_cursor):
        index, faults, exact = deep_cursor
        cursor = index.cursor(faults)
        assert cursor.diameter(cap=1) == INFINITY
        assert cursor._lower_bound >= 2

    def test_bound_short_circuits_without_bfs(self, deep_cursor, monkeypatch):
        index, faults, exact = deep_cursor
        cursor = index.cursor(faults)
        assert cursor.diameter(cap=2) == INFINITY
        # Any further evaluation attempt would be a regression: the memoised
        # lower bound already decides bounds below it.  EvalCursor uses
        # __slots__, so the trap goes on the class.
        from repro.core.route_index import EvalCursor

        monkeypatch.setattr(
            EvalCursor,
            "_evaluate",
            lambda *a, **k: pytest.fail("bound query re-ran the BFS"),
        )
        assert cursor.diameter_at_most(1) is False
        assert cursor.diameter_at_most(2) is False
        assert cursor.diameter(cap=2) == INFINITY

    def test_exact_diameter_still_obtainable_after_failed_cap(self, deep_cursor):
        index, faults, exact = deep_cursor
        cursor = index.cursor(faults)
        assert cursor.diameter(cap=1) == INFINITY
        assert cursor.diameter() == exact
        assert cursor.diameter(cap=1) == INFINITY  # memo survives exact eval

    def test_lower_bound_propagates_to_derived_cursors(self, deep_cursor):
        index, faults, exact = deep_cursor
        cursor = index.cursor(faults)
        assert cursor.diameter(cap=1) == INFINITY
        assert cursor._capped_unreached is not None
        source_bit, unreached, lb = cursor._capped_unreached
        # Pick a node that is neither the witness source nor its last
        # unreached node: removing more nodes only lengthens routes, so the
        # bound transfers.
        pool = index.node_pool
        fault_set = set(faults)
        for node in pool:
            bit = 1 << index._id_of[node]
            if node in fault_set or bit == source_bit or unreached == bit:
                continue
            child = cursor.with_added(node)
            assert child._lower_bound >= lb
            assert child.diameter() >= lb
            break
        else:  # pragma: no cover
            pytest.fail("no propagation candidate in the pool")

    @requires_numpy
    def test_numpy_backend_memoises_failed_caps_too(self):
        graph = generators.circulant_graph(16, [1])
        result = kernel_routing(graph)
        index = RouteIndex(graph, result.routing, backend="numpy")
        nodes = sorted(graph.nodes(), key=repr)
        cursor = index.cursor(nodes[:3])
        assert cursor.diameter(cap=1) == INFINITY
        assert cursor._lower_bound >= 2
        assert cursor.diameter_at_most(1) is False

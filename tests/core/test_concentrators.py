"""Unit tests for concentrator construction (neighbourhood sets, two-trees roots)."""

import math

import pytest

from repro.core import (
    greedy_neighborhood_set,
    lemma15_lower_bound,
    neighborhood_set,
    required_neighborhood_set_size,
    two_trees_concentrator,
    two_trees_concentrator_for_roots,
)
from repro.exceptions import PropertyNotSatisfiedError
from repro.graphs import Graph, is_neighborhood_set
from repro.graphs import generators, synthetic


class TestGreedyNeighborhoodSet:
    def test_cycle(self):
        graph = generators.cycle_graph(12)
        selected = greedy_neighborhood_set(graph)
        assert is_neighborhood_set(graph, selected)
        assert len(selected) == 4  # n / (d^2 + 1) = 12/5 -> greedy does better: 4

    def test_lemma15_bound_holds(self):
        for graph in (
            generators.cycle_graph(20),
            generators.hypercube_graph(4),
            generators.grid_graph(5, 5),
            generators.petersen_graph(),
            generators.torus_graph(5, 5),
        ):
            selected = greedy_neighborhood_set(graph)
            assert is_neighborhood_set(graph, selected)
            assert len(selected) >= lemma15_lower_bound(graph)

    def test_limit_respected(self):
        graph = generators.cycle_graph(30)
        selected = greedy_neighborhood_set(graph, limit=3)
        assert len(selected) == 3
        assert is_neighborhood_set(graph, selected)

    def test_explicit_order(self):
        graph = generators.cycle_graph(9)
        selected = greedy_neighborhood_set(graph, order=[0, 3, 6, 1, 2])
        assert selected == [0, 3, 6]

    def test_empty_graph(self):
        assert greedy_neighborhood_set(Graph()) == []
        assert lemma15_lower_bound(Graph()) == 0

    def test_lemma15_formula(self):
        graph = generators.cycle_graph(12)
        assert lemma15_lower_bound(graph) == math.ceil(12 / 5)


class TestNeighborhoodSetSearch:
    def test_finds_requested_size(self):
        graph = generators.cycle_graph(15)
        members = neighborhood_set(graph, 5)
        assert len(members) == 5
        assert is_neighborhood_set(graph, members)

    def test_zero_size(self):
        assert neighborhood_set(generators.cycle_graph(6), 0) == []

    def test_too_large_raises(self):
        graph = generators.cycle_graph(9)
        with pytest.raises(PropertyNotSatisfiedError):
            neighborhood_set(graph, 4)  # only 3 fit in C_9

    def test_complete_graph_has_singleton_only(self):
        graph = generators.complete_graph(5)
        assert len(neighborhood_set(graph, 1)) == 1
        with pytest.raises(PropertyNotSatisfiedError):
            neighborhood_set(graph, 2)

    def test_exhaustive_fallback_small_graph(self):
        # A graph where the low-degree-first greedy can be suboptimal but an
        # exhaustive search still finds 2 nodes at distance >= 3.
        graph = generators.path_graph(7)
        members = neighborhood_set(graph, 2)
        assert len(members) == 2
        assert is_neighborhood_set(graph, members)

    def test_flower_graph_designated_set_found(self):
        graph, flowers = synthetic.flower_graph(t=2, k=5)
        members = neighborhood_set(graph, 5)
        assert len(members) == 5
        assert is_neighborhood_set(graph, members)


class TestRequiredSizes:
    def test_circular_sizes(self):
        assert required_neighborhood_set_size(2, "circular") == 3
        assert required_neighborhood_set_size(3, "circular") == 5
        assert required_neighborhood_set_size(0, "circular") == 1

    def test_wide_circular(self):
        assert required_neighborhood_set_size(2, "circular-wide") == 5

    def test_tricircular_sizes(self):
        assert required_neighborhood_set_size(1, "tricircular") == 15
        assert required_neighborhood_set_size(2, "tricircular") == 21

    def test_tricircular_small_sizes(self):
        assert required_neighborhood_set_size(2, "tricircular-small") == 9
        assert required_neighborhood_set_size(3, "tricircular-small") == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            required_neighborhood_set_size(-1, "circular")
        with pytest.raises(ValueError):
            required_neighborhood_set_size(1, "unknown")


class TestTwoTreesConcentrator:
    def test_automatic_roots_on_cycle(self):
        graph = generators.cycle_graph(12)
        r1, r2, m1, m2 = two_trees_concentrator(graph)
        assert r1 != r2
        assert set(m1) == graph.neighbors(r1)
        assert set(m2) == graph.neighbors(r2)

    def test_missing_property_raises(self):
        with pytest.raises(PropertyNotSatisfiedError):
            two_trees_concentrator(generators.hypercube_graph(3))

    def test_explicit_roots(self):
        graph, r1, r2 = synthetic.two_trees_graph(t=2)
        root1, root2, m1, m2 = two_trees_concentrator_for_roots(graph, r1, r2)
        assert (root1, root2) == (r1, r2)
        assert len(m1) == 3
        assert len(m2) == 3
        assert not (set(m1) & set(m2))

    def test_explicit_roots_validation(self):
        graph = generators.cycle_graph(12)
        with pytest.raises(PropertyNotSatisfiedError):
            two_trees_concentrator_for_roots(graph, 0, 2)

"""Unit tests for the bipolar constructions (Theorems 20 and 23)."""

import pytest

from repro.core import (
    bidirectional_bipolar_routing,
    check_bidirectional_bipolar_properties,
    check_bipolar_properties,
    check_routing_model,
    surviving_diameter,
    unidirectional_bipolar_routing,
    verify_construction,
)
from repro.core.tolerance import check_tolerance
from repro.exceptions import ConstructionError, PropertyNotSatisfiedError
from repro.faults import all_fault_sets
from repro.graphs import generators, synthetic


class TestUnidirectionalBipolar:
    def test_scheme_and_guarantee(self, bipolar_uni_on_two_trees):
        assert bipolar_uni_on_two_trees.scheme == "bipolar-uni"
        assert bipolar_uni_on_two_trees.guarantee.diameter_bound == 4
        assert bipolar_uni_on_two_trees.guarantee.max_faults == 2
        assert not bipolar_uni_on_two_trees.routing.bidirectional

    def test_concentrator_halves(self, bipolar_uni_on_two_trees):
        details = bipolar_uni_on_two_trees.details
        m1, m2 = details["m1"], details["m2"]
        assert len(m1) == 3 and len(m2) == 3
        assert not (set(m1) & set(m2))
        graph = bipolar_uni_on_two_trees.graph
        assert set(m1) == graph.neighbors(details["root1"])
        assert set(m2) == graph.neighbors(details["root2"])

    def test_routing_model_invariants(self, bipolar_uni_on_two_trees):
        assert check_routing_model(bipolar_uni_on_two_trees.routing) == []

    def test_every_pair_direction_covered(self, bipolar_uni_on_two_trees):
        """Component B-POL 5 guarantees: if (x,y) is routed then so is (y,x)."""
        routing = bipolar_uni_on_two_trees.routing
        for source, target in routing.pairs():
            assert routing.has_route(target, source)

    def test_bipolar_properties_fault_free(self, bipolar_uni_on_two_trees):
        assert check_bipolar_properties(bipolar_uni_on_two_trees, set()) == []

    def test_bipolar_properties_under_faults(self, bipolar_uni_on_two_trees):
        m1 = bipolar_uni_on_two_trees.details["m1"]
        faults = {m1[0], m1[1]}
        assert check_bipolar_properties(bipolar_uni_on_two_trees, faults) == []

    def test_theorem20_exhaustive_single_faults(self, bipolar_uni_on_two_trees):
        graph = bipolar_uni_on_two_trees.graph
        report = check_tolerance(
            graph,
            bipolar_uni_on_two_trees.routing,
            diameter_bound=4,
            max_faults=1,
            fault_sets=all_fault_sets(graph.nodes(), 1),
        )
        assert report.holds

    def test_theorem20_battery_two_faults(self, bipolar_uni_on_two_trees):
        report = verify_construction(bipolar_uni_on_two_trees, exhaustive_limit=500)
        assert report.exhaustive
        assert report.holds

    def test_cycle_roots_autodetected(self):
        graph = generators.cycle_graph(12)
        result = unidirectional_bipolar_routing(graph)
        assert result.t == 1
        report = verify_construction(result, exhaustive_limit=100)
        assert report.holds

    def test_missing_two_trees_property(self):
        with pytest.raises(PropertyNotSatisfiedError):
            unidirectional_bipolar_routing(generators.hypercube_graph(3))

    def test_invalid_roots_rejected(self):
        graph = generators.cycle_graph(12)
        with pytest.raises(PropertyNotSatisfiedError):
            unidirectional_bipolar_routing(graph, roots=(0, 2))

    def test_negative_t(self):
        with pytest.raises(ConstructionError):
            unidirectional_bipolar_routing(generators.cycle_graph(12), t=-1)


class TestBidirectionalBipolar:
    def test_scheme_and_guarantee(self, bipolar_bi_on_two_trees):
        assert bipolar_bi_on_two_trees.scheme == "bipolar-bi"
        assert bipolar_bi_on_two_trees.guarantee.diameter_bound == 5
        assert bipolar_bi_on_two_trees.routing.bidirectional

    def test_symmetry(self, bipolar_bi_on_two_trees):
        assert bipolar_bi_on_two_trees.routing.is_symmetric()

    def test_routing_model_invariants(self, bipolar_bi_on_two_trees):
        assert check_routing_model(bipolar_bi_on_two_trees.routing) == []

    def test_2bpol_properties_fault_free(self, bipolar_bi_on_two_trees):
        assert check_bidirectional_bipolar_properties(bipolar_bi_on_two_trees, set()) == []

    def test_2bpol_properties_under_faults(self, bipolar_bi_on_two_trees):
        m2 = bipolar_bi_on_two_trees.details["m2"]
        faults = {m2[0], m2[-1]}
        assert (
            check_bidirectional_bipolar_properties(bipolar_bi_on_two_trees, faults) == []
        )

    def test_theorem23_battery(self, bipolar_bi_on_two_trees):
        report = verify_construction(bipolar_bi_on_two_trees, exhaustive_limit=500)
        assert report.exhaustive
        assert report.holds

    def test_theorem23_on_cycle(self):
        graph = generators.cycle_graph(14)
        result = bidirectional_bipolar_routing(graph)
        report = verify_construction(result, exhaustive_limit=200)
        assert report.holds

    def test_m1_routes_to_m2(self, bipolar_bi_on_two_trees):
        """Component 2B-POL 2 gives every M1 node routes to t+1 nodes of M2."""
        routing = bipolar_bi_on_two_trees.routing
        m1 = bipolar_bi_on_two_trees.details["m1"]
        m2 = set(bipolar_bi_on_two_trees.details["m2"])
        for member in m1:
            targets = {other for other in m2 if routing.has_route(member, other)}
            assert len(targets) >= bipolar_bi_on_two_trees.t + 1

    def test_missing_two_trees_property(self):
        with pytest.raises(PropertyNotSatisfiedError):
            bidirectional_bipolar_routing(generators.grid_graph(4, 4))

    def test_negative_t(self):
        with pytest.raises(ConstructionError):
            bidirectional_bipolar_routing(generators.cycle_graph(12), t=-1)


class TestBipolarComparison:
    def test_unidirectional_has_no_worse_bound(self, bipolar_uni_on_two_trees, bipolar_bi_on_two_trees):
        assert (
            bipolar_uni_on_two_trees.guarantee.diameter_bound
            <= bipolar_bi_on_two_trees.guarantee.diameter_bound
        )

    def test_fault_free_diameters(self, bipolar_uni_on_two_trees, bipolar_bi_on_two_trees):
        for result in (bipolar_uni_on_two_trees, bipolar_bi_on_two_trees):
            assert (
                surviving_diameter(result.graph, result.routing, ())
                <= result.guarantee.diameter_bound
            )

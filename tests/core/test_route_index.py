"""Unit tests for the precomputed route index (incremental fast path)."""

import pytest

from repro.core import (
    RouteIndex,
    kernel_multirouting,
    kernel_routing,
    surviving_diameter,
    surviving_route_graph,
)
from repro.exceptions import FaultModelError
from repro.graphs import generators


@pytest.fixture(scope="module")
def indexed_routing():
    graph = generators.circulant_graph(14, [1, 2])
    result = kernel_routing(graph)
    return graph, result.routing, RouteIndex(graph, result.routing)


class TestRouteIndexBasics:
    def test_base_route_graph_matches_fault_free_naive(self, indexed_routing):
        graph, routing, index = indexed_routing
        assert index.base_route_graph() == surviving_route_graph(graph, routing, ())

    def test_pairs_through_covers_every_route_node(self, indexed_routing):
        graph, routing, index = indexed_routing
        for (source, target), path in routing.items():
            for node in path:
                assert (source, target) in index.pairs_through(node)

    def test_pairs_through_unused_node_is_empty(self, indexed_routing):
        graph, routing, index = indexed_routing
        # Routes only visit graph nodes, so a non-node has no pairs.
        assert index.pairs_through("not-a-node") == frozenset()

    def test_matches_identity(self, indexed_routing):
        graph, routing, index = indexed_routing
        assert index.matches(graph, routing)
        assert not index.matches(graph, routing.copy())

    def test_unknown_fault_rejected(self, indexed_routing):
        graph, routing, index = indexed_routing
        with pytest.raises(FaultModelError):
            index.surviving_diameter({"ghost"})

    def test_mismatched_index_rejected_by_surviving_helpers(self, indexed_routing):
        graph, routing, index = indexed_routing
        other = generators.cycle_graph(14)
        other_result = kernel_routing(other)
        with pytest.raises(ValueError):
            surviving_diameter(other, other_result.routing, (), index=index)
        with pytest.raises(ValueError):
            surviving_route_graph(other, other_result.routing, (), index=index)


class TestKernelSelection:
    def test_set_kernel_matches_bitset(self, indexed_routing):
        graph, routing, index = indexed_routing
        for faults in [(), {0}, {0, 5}, {1, 6, 9}, set(graph.nodes()[:7])]:
            assert index.surviving_diameter(faults) == index.surviving_diameter(
                faults, kernel="sets"
            )

    def test_unknown_kernel_rejected(self, indexed_routing):
        graph, routing, index = indexed_routing
        with pytest.raises(ValueError):
            index.surviving_diameter((), kernel="frozensets")

    def test_cap_rejected_by_set_kernel(self, indexed_routing):
        graph, routing, index = indexed_routing
        with pytest.raises(ValueError):
            index.surviving_diameter((), cap=2, kernel="sets")

    def test_capped_value_compares_like_the_true_diameter(self, indexed_routing):
        graph, routing, index = indexed_routing
        for faults in [(), {0, 5}, {1, 6, 9}]:
            exact = index.surviving_diameter(faults)
            for cap in [0, 1, 2, 3, 10, float("inf")]:
                capped = index.surviving_diameter(faults, cap=cap)
                assert (capped <= cap) == (exact <= cap)
                if capped <= cap:
                    assert capped == exact


class TestDiameterAtMost:
    def test_matches_diameter_comparison(self, indexed_routing):
        graph, routing, index = indexed_routing
        batteries = [(), {0}, {0, 5}, {1, 6, 9}, set(graph.nodes()[:7])]
        for faults in batteries:
            exact = index.surviving_diameter(faults)
            for bound in [0, 1, 2, 3, 4, 10, float("inf")]:
                assert index.surviving_diameter_at_most(faults, bound) == (
                    exact <= bound
                )

    def test_disconnected_only_within_infinite_bound(self, indexed_routing):
        graph, routing, index = indexed_routing
        everyone = set(graph.nodes())
        assert index.surviving_diameter_at_most(everyone, float("inf"))
        assert not index.surviving_diameter_at_most(everyone, 10 ** 9)

    def test_nan_bound_is_never_satisfied(self, indexed_routing):
        graph, routing, index = indexed_routing
        assert not index.surviving_diameter_at_most((), float("nan"))

    def test_module_level_wrapper(self, indexed_routing):
        from repro.core import surviving_diameter_at_most

        graph, routing, index = indexed_routing
        for faults in [(), {0, 5}]:
            exact = surviving_diameter(graph, routing, faults)
            for bound in [1, 2, 3, float("inf")]:
                expected = exact <= bound
                assert surviving_diameter_at_most(
                    graph, routing, faults, bound
                ) == expected
                assert surviving_diameter_at_most(
                    graph, routing, faults, bound, index=index
                ) == expected


class TestEvalCursor:
    def test_cursor_matches_fresh_evaluation(self, indexed_routing):
        graph, routing, index = indexed_routing
        cursor = index.cursor({0, 5})
        assert cursor.diameter() == index.surviving_diameter({0, 5})
        assert cursor.surviving_route_graph() == index.surviving_route_graph({0, 5})
        assert cursor.faults == frozenset({0, 5})

    def test_with_added_equals_from_scratch(self, indexed_routing):
        graph, routing, index = indexed_routing
        cursor = index.cursor({0})
        for extra in [1, 5, 9]:
            derived = cursor.with_added(extra)
            faults = {0, extra}
            assert derived.faults == frozenset(faults)
            assert derived.diameter() == index.surviving_diameter(faults)
            assert derived.surviving_route_graph() == index.surviving_route_graph(
                faults
            )

    def test_with_added_chains(self, indexed_routing):
        graph, routing, index = indexed_routing
        cursor = index.cursor(())
        faults = set()
        for node in [3, 8, 1, 12]:
            cursor = cursor.with_added(node)
            faults.add(node)
            assert cursor.diameter() == index.surviving_diameter(faults)

    def test_with_added_existing_fault_returns_distinct_cursor(self, indexed_routing):
        # Regression: with_added on an already-faulty node used to return
        # ``self``, so memoising on the "child" mutated the parent cursor.
        graph, routing, index = indexed_routing
        cursor = index.cursor({4})
        twin = cursor.with_added(4)
        assert twin is not cursor
        assert twin.faults == cursor.faults
        assert twin.diameter() == cursor.diameter()

    def test_with_added_unknown_node_rejected(self, indexed_routing):
        graph, routing, index = indexed_routing
        with pytest.raises(FaultModelError):
            index.cursor(()).with_added("ghost")

    def test_parent_not_mutated_by_derivation(self, indexed_routing):
        graph, routing, index = indexed_routing
        cursor = index.cursor({0})
        before = cursor.diameter()
        for extra in [1, 2, 3]:
            cursor.with_added(extra).diameter()
        assert cursor.diameter() == before
        assert cursor.faults == frozenset({0})

    def test_disconnection_propagates_through_with_added(self, indexed_routing):
        graph, routing, index = indexed_routing
        nodes = graph.nodes()
        # Kill all but three nodes: the surviving route graph of the kernel
        # routing on the circulant stays evaluable and derivations remain
        # exactly equivalent to fresh evaluations, connected or not.
        base = set(nodes[:10])
        cursor = index.cursor(base)
        for extra in nodes[10:12]:
            derived = cursor.with_added(extra)
            assert derived.diameter() == index.surviving_diameter(base | {extra})

    def test_cursor_diameter_at_most(self, indexed_routing):
        graph, routing, index = indexed_routing
        cursor = index.cursor({0, 5})
        exact = cursor.diameter()
        fresh = index.cursor({0, 5})
        for bound in [0, 1, 2, 3, 10, float("inf")]:
            assert fresh.diameter_at_most(bound) == (exact <= bound)


class TestPickling:
    def test_roundtrip_preserves_evaluation(self, indexed_routing):
        import pickle

        graph, routing, index = indexed_routing
        clone = pickle.loads(pickle.dumps(index))
        for faults in [(), {0, 5}, set(graph.nodes()[:7])]:
            assert clone.surviving_diameter(faults) == index.surviving_diameter(faults)
            assert clone.surviving_route_graph(faults) == index.surviving_route_graph(
                faults
            )

    def test_lazy_set_kernel_cache_not_pickled(self, indexed_routing):
        import pickle

        graph, routing, index = indexed_routing
        index.surviving_diameter({0}, kernel="sets")  # populate the cache
        assert index._set_kernel is not None
        clone = pickle.loads(pickle.dumps(index))
        assert clone._set_kernel is None
        assert clone.surviving_diameter({0}, kernel="sets") == index.surviving_diameter(
            {0}
        )


class TestRouteIndexEquivalence:
    def test_graph_and_diameter_match_naive(self, indexed_routing):
        graph, routing, index = indexed_routing
        for faults in [(), {0}, {0, 5}, {1, 6, 9}, set(graph.nodes()[:7])]:
            faults = set(faults)
            assert surviving_route_graph(
                graph, routing, faults, index=index
            ) == surviving_route_graph(graph, routing, faults)
            assert surviving_diameter(
                graph, routing, faults, index=index
            ) == surviving_diameter(graph, routing, faults)

    def test_all_nodes_faulty(self, indexed_routing):
        graph, routing, index = indexed_routing
        everyone = set(graph.nodes())
        assert index.surviving_diameter(everyone) == float("inf")
        assert index.surviving_route_graph(everyone).number_of_nodes() == 0

    def test_single_survivor_has_diameter_zero(self, indexed_routing):
        graph, routing, index = indexed_routing
        nodes = graph.nodes()
        faults = set(nodes[1:])
        assert index.surviving_diameter(faults) == 0

    def test_multirouting_any_route_survival(self):
        graph = generators.circulant_graph(12, [1, 2])
        result = kernel_multirouting(graph)
        index = RouteIndex(graph, result.routing)
        for faults in [(), {0}, {0, 3}, {2, 5, 8}]:
            faults = set(faults)
            assert surviving_route_graph(
                graph, result.routing, faults, index=index
            ) == surviving_route_graph(graph, result.routing, faults)
            assert surviving_diameter(
                graph, result.routing, faults, index=index
            ) == surviving_diameter(graph, result.routing, faults)

"""Unit tests for the precomputed route index (incremental fast path)."""

import pytest

from repro.core import (
    RouteIndex,
    kernel_multirouting,
    kernel_routing,
    surviving_diameter,
    surviving_route_graph,
)
from repro.exceptions import FaultModelError
from repro.graphs import generators


@pytest.fixture(scope="module")
def indexed_routing():
    graph = generators.circulant_graph(14, [1, 2])
    result = kernel_routing(graph)
    return graph, result.routing, RouteIndex(graph, result.routing)


class TestRouteIndexBasics:
    def test_base_route_graph_matches_fault_free_naive(self, indexed_routing):
        graph, routing, index = indexed_routing
        assert index.base_route_graph() == surviving_route_graph(graph, routing, ())

    def test_pairs_through_covers_every_route_node(self, indexed_routing):
        graph, routing, index = indexed_routing
        for (source, target), path in routing.items():
            for node in path:
                assert (source, target) in index.pairs_through(node)

    def test_pairs_through_unused_node_is_empty(self, indexed_routing):
        graph, routing, index = indexed_routing
        # Routes only visit graph nodes, so a non-node has no pairs.
        assert index.pairs_through("not-a-node") == frozenset()

    def test_matches_identity(self, indexed_routing):
        graph, routing, index = indexed_routing
        assert index.matches(graph, routing)
        assert not index.matches(graph, routing.copy())

    def test_unknown_fault_rejected(self, indexed_routing):
        graph, routing, index = indexed_routing
        with pytest.raises(FaultModelError):
            index.surviving_diameter({"ghost"})

    def test_mismatched_index_rejected_by_surviving_helpers(self, indexed_routing):
        graph, routing, index = indexed_routing
        other = generators.cycle_graph(14)
        other_result = kernel_routing(other)
        with pytest.raises(ValueError):
            surviving_diameter(other, other_result.routing, (), index=index)
        with pytest.raises(ValueError):
            surviving_route_graph(other, other_result.routing, (), index=index)


class TestRouteIndexEquivalence:
    def test_graph_and_diameter_match_naive(self, indexed_routing):
        graph, routing, index = indexed_routing
        for faults in [(), {0}, {0, 5}, {1, 6, 9}, set(graph.nodes()[:7])]:
            faults = set(faults)
            assert surviving_route_graph(
                graph, routing, faults, index=index
            ) == surviving_route_graph(graph, routing, faults)
            assert surviving_diameter(
                graph, routing, faults, index=index
            ) == surviving_diameter(graph, routing, faults)

    def test_all_nodes_faulty(self, indexed_routing):
        graph, routing, index = indexed_routing
        everyone = set(graph.nodes())
        assert index.surviving_diameter(everyone) == float("inf")
        assert index.surviving_route_graph(everyone).number_of_nodes() == 0

    def test_single_survivor_has_diameter_zero(self, indexed_routing):
        graph, routing, index = indexed_routing
        nodes = graph.nodes()
        faults = set(nodes[1:])
        assert index.surviving_diameter(faults) == 0

    def test_multirouting_any_route_survival(self):
        graph = generators.circulant_graph(12, [1, 2])
        result = kernel_multirouting(graph)
        index = RouteIndex(graph, result.routing)
        for faults in [(), {0}, {0, 3}, {2, 5, 8}]:
            faults = set(faults)
            assert surviving_route_graph(
                graph, result.routing, faults, index=index
            ) == surviving_route_graph(graph, result.routing, faults)
            assert surviving_diameter(
                graph, result.routing, faults, index=index
            ) == surviving_diameter(graph, result.routing, faults)

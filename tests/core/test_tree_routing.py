"""Unit tests for tree routings (Lemma 2)."""

import pytest

from repro.core import tree_routing, tree_routing_to_neighborhood, verify_tree_routing
from repro.exceptions import ConstructionError
from repro.graphs import are_internally_disjoint, is_simple_path
from repro.graphs import generators, synthetic


class TestTreeRoutingToSeparatingSet:
    def test_cycle_kernel(self):
        graph = generators.cycle_graph(8)
        separating = {2, 6}
        routes = tree_routing(graph, 0, separating, width=2)
        assert set(routes) <= separating
        assert len(routes) == 2
        assert not verify_tree_routing(graph, 0, separating, routes, 2)

    def test_routes_are_disjoint_simple_paths(self):
        graph = generators.hypercube_graph(3)
        separating = {1, 2, 4}  # neighbours of 0 separate it from the rest
        routes = tree_routing(graph, 7, separating, width=3)
        assert len(routes) == 3
        for endpoint, path in routes.items():
            assert path[0] == 7
            assert path[-1] == endpoint
            assert is_simple_path(graph, path)
        assert are_internally_disjoint(list(routes.values()))

    def test_direct_edge_shortcut(self):
        graph = generators.cycle_graph(8)
        separating = {1, 5}
        routes = tree_routing(graph, 0, separating, width=2)
        # 0 is adjacent to 1, so the route to 1 must be the single edge.
        assert routes[1] == [0, 1]

    def test_adjacent_majority_shortcut(self):
        graph = generators.complete_bipartite_graph(3, 4)
        left = [("a", i) for i in range(3)]
        source = ("b", 0)
        routes = tree_routing(graph, source, set(left), width=3)
        assert all(path == [source, target] for target, path in routes.items())

    def test_source_in_set_rejected(self):
        graph = generators.cycle_graph(8)
        with pytest.raises(ConstructionError):
            tree_routing(graph, 2, {2, 6}, width=2)

    def test_width_validation(self):
        graph = generators.cycle_graph(8)
        with pytest.raises(ConstructionError):
            tree_routing(graph, 0, {2, 6}, width=0)
        with pytest.raises(ConstructionError):
            tree_routing(graph, 0, {2}, width=2)

    def test_not_separating_raises(self):
        # A single node never separates a cycle, so the anchor search must fail.
        graph = generators.cycle_graph(6)
        with pytest.raises(ConstructionError):
            tree_routing(graph, 0, {3}, width=1)

    def test_insufficient_connectivity(self):
        graph = generators.path_graph(6)
        # A path is only 1-connected: asking for 2 disjoint routes must fail.
        with pytest.raises(ConstructionError):
            tree_routing(graph, 0, {2, 4}, width=2)

    def test_anchor_must_be_outside_set(self):
        graph = generators.cycle_graph(8)
        with pytest.raises(ConstructionError):
            tree_routing(graph, 0, {2, 6}, width=2, anchor=2)

    def test_anchor_must_not_be_source(self):
        graph = generators.cycle_graph(8)
        with pytest.raises(ConstructionError):
            tree_routing(graph, 0, {2, 6}, width=2, anchor=0)

    def test_kernel_test_graph_bridge(self):
        graph = synthetic.kernel_test_graph(t=2)
        bridge = {("bridge", b) for b in range(3)}
        routes = tree_routing(graph, ("left", 0), bridge, width=3)
        assert len(routes) == 3
        assert set(routes) == bridge
        assert not verify_tree_routing(graph, ("left", 0), bridge, routes, 3)


class TestTreeRoutingToNeighborhood:
    def test_routes_reach_neighbourhood(self):
        graph = generators.cycle_graph(10)
        routes = tree_routing_to_neighborhood(graph, 0, 5, width=2)
        assert set(routes) == {4, 6}
        assert not verify_tree_routing(graph, 0, graph.neighbors(5), routes, 2)

    def test_source_is_center(self):
        graph = generators.hypercube_graph(3)
        routes = tree_routing_to_neighborhood(graph, 0, 0, width=3)
        assert len(routes) == 3
        assert all(path == [0, m] for m, path in routes.items())
        assert set(routes) <= graph.neighbors(0)

    def test_center_with_insufficient_degree(self):
        graph = generators.path_graph(5)
        with pytest.raises(ConstructionError):
            tree_routing_to_neighborhood(graph, 2, 2, width=3)

    def test_source_inside_neighborhood_rejected(self):
        graph = generators.cycle_graph(10)
        with pytest.raises(ConstructionError):
            tree_routing_to_neighborhood(graph, 4, 5, width=2)

    def test_flower_graph_tree_routings(self):
        graph, flowers = synthetic.flower_graph(t=2, k=4)
        source = ("ring", 7)
        for center in flowers:
            if source in graph.neighbors(center):
                continue
            routes = tree_routing_to_neighborhood(graph, source, center, width=3)
            assert len(routes) == 3
            assert set(routes) <= graph.neighbors(center)
            assert are_internally_disjoint(list(routes.values()))

    def test_combined_with_center_gives_disjoint_paths_to_center(self):
        # Lemma 5's premise: tree routing to Gamma(m) + edges to m yields
        # width internally disjoint x-m paths.
        graph = generators.circulant_graph(12, [1, 2])
        routes = tree_routing_to_neighborhood(graph, 0, 6, width=4)
        extended = [path + [6] for path in routes.values()]
        assert are_internally_disjoint(extended)


class TestVerifyTreeRouting:
    def test_detects_wrong_count(self):
        graph = generators.cycle_graph(8)
        routes = tree_routing(graph, 0, {2, 6}, width=2)
        del routes[list(routes)[0]]
        problems = verify_tree_routing(graph, 0, {2, 6}, routes, 2)
        assert any("expected 2 routes" in p for p in problems)

    def test_detects_wrong_endpoint(self):
        graph = generators.cycle_graph(8)
        problems = verify_tree_routing(graph, 0, {2, 6}, {3: [0, 1, 2, 3]}, 1)
        assert any("not in the separating set" in p for p in problems)

    def test_detects_missing_shortcut(self):
        graph = generators.cycle_graph(8)
        problems = verify_tree_routing(
            graph, 0, {1, 5}, {1: [0, 7, 6, 5, 4, 3, 2, 1]}, 1
        )
        assert any("direct edge" in p for p in problems)

    def test_detects_overlap(self):
        graph = generators.circulant_graph(8, [1, 2])
        routes = {2: [0, 1, 2], 3: [0, 1, 3]}
        problems = verify_tree_routing(graph, 0, {2, 3}, routes, 2)
        assert any("disjoint" in p for p in problems)

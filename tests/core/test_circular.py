"""Unit tests for the circular construction (Theorem 10)."""

import pytest

from repro.core import (
    check_circ_properties,
    check_routing_model,
    check_tcirc_property,
    circular_component_range,
    circular_routing,
    surviving_diameter,
    verify_construction,
)
from repro.core.tolerance import check_tolerance
from repro.exceptions import ConstructionError, PropertyNotSatisfiedError
from repro.faults import all_fault_sets
from repro.graphs import generators, is_neighborhood_set, synthetic


class TestComponentRange:
    def test_odd_k(self):
        assert list(circular_component_range(5)) == [1, 2]
        assert list(circular_component_range(7)) == [1, 2, 3]

    def test_even_k(self):
        assert list(circular_component_range(6)) == [1, 2]
        assert list(circular_component_range(4)) == [1]

    def test_small_k(self):
        assert list(circular_component_range(1)) == []
        assert list(circular_component_range(2)) == []
        assert list(circular_component_range(3)) == [1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            circular_component_range(0)

    def test_no_conflicting_offsets(self):
        # For no pair of indices may both (j) and (K - j) lie in the range.
        for k in range(3, 30):
            offsets = set(circular_component_range(k))
            assert not any((k - j) in offsets for j in offsets)


class TestCircularConstruction:
    def test_scheme_and_guarantee(self, circular_on_flower):
        assert circular_on_flower.scheme == "circular"
        assert circular_on_flower.guarantee.diameter_bound == 6
        assert circular_on_flower.guarantee.max_faults == 2

    def test_concentrator_is_neighborhood_set(self, circular_on_flower):
        assert is_neighborhood_set(
            circular_on_flower.graph, circular_on_flower.concentrator
        )

    def test_routing_model_invariants(self, circular_on_flower):
        assert check_routing_model(circular_on_flower.routing) == []

    def test_default_k_for_even_and_odd_t(self):
        graph, flowers = synthetic.flower_graph(t=2, k=5)
        result = circular_routing(graph, t=2, concentrator=flowers)
        assert result.details["k"] == 3  # t even -> t + 1
        graph1 = generators.cycle_graph(12)
        result1 = circular_routing(graph1)  # t = 1, odd -> t + 2 = 3
        assert result1.details["k"] == 3

    def test_wide_variant_k(self):
        graph, flowers = synthetic.flower_graph(t=1, k=5)
        result = circular_routing(graph, t=1, concentrator=flowers, wide=True)
        assert result.details["k"] == 3  # 2t + 1

    def test_explicit_k(self):
        graph, flowers = synthetic.flower_graph(t=1, k=5)
        result = circular_routing(graph, t=1, concentrator=flowers, k=5)
        assert len(result.concentrator) == 5

    def test_auto_concentrator(self, circular_on_cycle):
        assert len(circular_on_cycle.concentrator) == 3
        assert is_neighborhood_set(
            circular_on_cycle.graph, circular_on_cycle.concentrator
        )

    def test_invalid_concentrator_rejected(self):
        graph = generators.cycle_graph(12)
        with pytest.raises(PropertyNotSatisfiedError):
            circular_routing(graph, concentrator=[0, 1, 2])
        with pytest.raises(ConstructionError):
            circular_routing(graph, concentrator=[0])
        with pytest.raises(ConstructionError):
            circular_routing(graph, concentrator=[0, 0, 0])

    def test_no_neighborhood_set_raises(self):
        # K_5 has no independent pair at distance >= 3.
        with pytest.raises(PropertyNotSatisfiedError):
            circular_routing(generators.complete_graph(5), k=2)

    def test_negative_t_rejected(self):
        with pytest.raises(ConstructionError):
            circular_routing(generators.cycle_graph(12), t=-1)

    def test_gamma_metadata(self, circular_on_flower):
        details = circular_on_flower.details
        assert details["gamma_union_size"] == sum(details["gamma_sizes"])
        assert all(size == 3 for size in details["gamma_sizes"])


class TestCircularTolerance:
    def test_theorem10_exhaustive_on_cycle(self, circular_on_cycle):
        graph = circular_on_cycle.graph
        report = check_tolerance(
            graph,
            circular_on_cycle.routing,
            diameter_bound=6,
            max_faults=1,
            fault_sets=all_fault_sets(graph.nodes(), 1),
        )
        assert report.holds

    def test_theorem10_exhaustive_on_flower(self, circular_on_flower):
        report = verify_construction(circular_on_flower, exhaustive_limit=400)
        assert report.exhaustive
        assert report.holds

    def test_circ_properties_hold_under_faults(self, circular_on_flower):
        graph = circular_on_flower.graph
        members = circular_on_flower.concentrator
        # Kill two concentrator members (the worst structural attack).
        faults = set(members[:2])
        assert check_circ_properties(circular_on_flower, faults) == []

    def test_property_circ_radius3(self, circular_on_cycle):
        # The K = t+1/t+2 variant satisfies Property CIRC (common member within 3).
        assert check_tcirc_property(circular_on_cycle, {4}, radius=3) == []

    def test_fault_free_diameter(self, circular_on_flower):
        assert (
            surviving_diameter(circular_on_flower.graph, circular_on_flower.routing, ())
            <= 6
        )

    def test_wide_variant_tolerance(self):
        graph, flowers = synthetic.flower_graph(t=1, k=3)
        result = circular_routing(graph, t=1, concentrator=flowers, wide=True)
        report = verify_construction(result, exhaustive_limit=100)
        assert report.holds

"""Unit tests for the independent property verifiers."""

import pytest

from repro.core import (
    Routing,
    check_bidirectional_bipolar_properties,
    check_bipolar_properties,
    check_circ_properties,
    check_routing_model,
    check_tcirc_property,
)
from repro.core.construction import ConstructionResult, Guarantee
from repro.graphs import generators


def _edge_only_result(graph, concentrator, details=None):
    routing = Routing(graph, name="edges-only")
    routing.add_all_edge_routes()
    return ConstructionResult(
        routing=routing,
        scheme="edges-only",
        t=1,
        guarantee=Guarantee(99, 1, "test"),
        concentrator=list(concentrator),
        details=details or {},
    )


class TestCheckRoutingModel:
    def test_valid_routing(self):
        graph = generators.cycle_graph(6)
        routing = Routing(graph)
        routing.add_all_edge_routes()
        routing.set_route(0, 2, [0, 1, 2])
        assert check_routing_model(routing) == []

    def test_detects_non_edge_route_between_adjacent_nodes(self):
        graph = generators.cycle_graph(6)
        routing = Routing(graph, bidirectional=False)
        routing.set_route(0, 1, [0, 5, 4, 3, 2, 1])
        problems = check_routing_model(routing)
        assert any("direct edge" in p for p in problems)

    def test_detects_asymmetric_bidirectional(self):
        graph = generators.cycle_graph(6)
        routing = Routing(graph, bidirectional=True)
        routing.set_route(0, 2, [0, 1, 2])
        # Force asymmetry through the private table (simulating a bug).
        routing._routes[(2, 0)] = (2, 3, 4, 5, 0)
        problems = check_routing_model(routing)
        assert any("symmetric" in p for p in problems)


class TestCircPropertyChecker:
    def test_circular_routing_passes(self, circular_on_cycle):
        assert check_circ_properties(circular_on_cycle, set()) == []

    def test_edge_only_routing_fails_circ2(self):
        # With only edge routes the concentrator members 0 and 6 of C_12 are
        # 6 hops apart, violating Property CIRC 2.
        graph = generators.cycle_graph(12)
        result = _edge_only_result(graph, concentrator=[0, 4, 8])
        problems = check_circ_properties(result, set())
        assert any("CIRC 2" in p for p in problems)

    def test_circ1_violation_detected(self):
        graph = generators.cycle_graph(12)
        result = _edge_only_result(graph, concentrator=[0])
        problems = check_circ_properties(result, set())
        assert any("CIRC 1" in p for p in problems)

    def test_tcirc_radius2_fails_for_edge_only(self):
        graph = generators.cycle_graph(12)
        result = _edge_only_result(graph, concentrator=[0, 6])
        problems = check_tcirc_property(result, set(), radius=2)
        assert problems

    def test_tcirc_passes_for_tricircular(self, tricircular_on_flower):
        members = tricircular_on_flower.concentrator
        assert check_tcirc_property(tricircular_on_flower, {members[3]}, radius=2) == []


class TestBipolarPropertyCheckers:
    def test_unidirectional_passes(self, bipolar_uni_on_two_trees):
        assert check_bipolar_properties(bipolar_uni_on_two_trees, set()) == []

    def test_bidirectional_passes(self, bipolar_bi_on_two_trees):
        assert check_bidirectional_bipolar_properties(bipolar_bi_on_two_trees, set()) == []

    def test_edge_only_routing_fails_bpol(self):
        graph = generators.cycle_graph(12)
        result = _edge_only_result(
            graph,
            concentrator=[11, 1, 5, 7],
            details={"m1": [11, 1], "m2": [5, 7], "root1": 0, "root2": 6},
        )
        problems = check_bipolar_properties(result, set())
        assert problems  # nodes far from the roots have no M neighbour

    def test_edge_only_routing_fails_2bpol(self):
        graph = generators.cycle_graph(12)
        result = _edge_only_result(
            graph,
            concentrator=[11, 1, 5, 7],
            details={"m1": [11, 1], "m2": [5, 7], "root1": 0, "root2": 6},
        )
        problems = check_bidirectional_bipolar_properties(result, set())
        assert problems

"""Property-based equivalence: the indexed fast path vs the naive path.

For random graphs, routings (single routes and multiroutings) and fault
sets, the :class:`~repro.core.route_index.RouteIndex` subtraction path must
reproduce the naive computation *node for node*: the same surviving route
graph (same node set, same arc set) and the same diameter.  This is the
contract that lets every campaign, battery and sweep in the library switch
to the incremental path without changing any observable result.
"""

import random as _random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RouteIndex, surviving_diameter, surviving_route_graph
from repro.core.routing import MultiRouting, Routing
from repro.graphs import generators
from repro.graphs.traversal import shortest_path

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _shortest_path_routing(graph, rng):
    """A total routing assigning one BFS shortest path per ordered pair.

    Built directly (rather than via a paper construction) so the property
    test exercises arbitrary route shapes, including asymmetric ones: with
    probability 1/2 the routing is unidirectional and each direction gets an
    independently discovered path.
    """
    bidirectional = rng.random() < 0.5
    routing = Routing(graph, bidirectional=bidirectional)
    nodes = graph.nodes()
    for source in nodes:
        for target in nodes:
            if source == target or routing.has_route(source, target):
                continue
            path = shortest_path(graph, source, target)
            if path is not None:
                routing.set_route(source, target, path)
    return routing


def _random_multirouting(graph, rng):
    """A multirouting with the shortest path plus occasional detour routes."""
    routing = MultiRouting(graph, bidirectional=True)
    nodes = graph.nodes()
    for source in nodes:
        for target in nodes:
            if repr(source) >= repr(target):
                continue
            path = shortest_path(graph, source, target)
            if path is None:
                continue
            routing.add_route(source, target, path)
            if len(path) >= 2 and rng.random() < 0.5:
                # A detour through a neighbour of the source, when one exists.
                for middle in sorted(graph.neighbors(source), key=repr):
                    if middle in (source, target) or middle in path:
                        continue
                    tail = shortest_path(graph, middle, target)
                    if tail and source not in tail and len(set(tail)) == len(tail):
                        routing.add_route(source, target, [source] + tail)
                        break
    return routing


@st.composite
def graph_routing_faults(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    extra = draw(st.floats(min_value=0.0, max_value=0.4))
    multi = draw(st.booleans())
    graph = generators.random_connected_graph(n, extra_edge_probability=extra, seed=seed)
    rng = _random.Random(seed + 1)
    routing = (
        _random_multirouting(graph, rng) if multi else _shortest_path_routing(graph, rng)
    )
    fault_count = draw(st.integers(min_value=0, max_value=n))
    faults = set(rng.sample(graph.nodes(), fault_count))
    return graph, routing, faults


class TestIndexedEquivalence:
    @SETTINGS
    @given(graph_routing_faults())
    def test_surviving_graph_identical(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        naive = surviving_route_graph(graph, routing, faults)
        fast = surviving_route_graph(graph, routing, faults, index=index)
        assert fast == naive
        assert sorted(map(repr, fast.nodes())) == sorted(map(repr, naive.nodes()))
        assert sorted(map(repr, fast.edges())) == sorted(map(repr, naive.edges()))

    @SETTINGS
    @given(graph_routing_faults())
    def test_surviving_diameter_identical(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        assert surviving_diameter(
            graph, routing, faults, index=index
        ) == surviving_diameter(graph, routing, faults)

    @SETTINGS
    @given(graph_routing_faults())
    def test_index_is_reusable_across_fault_sets(self, case):
        """One index must serve many fault sets without cross-contamination."""
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        # Evaluate a different fault set first, then the real one.
        nodes = graph.nodes()
        other = set(nodes[: min(2, len(nodes))])
        index.surviving_diameter(other)
        assert surviving_diameter(
            graph, routing, faults, index=index
        ) == surviving_diameter(graph, routing, faults)

"""Property-based equivalence: bitset vs sets vs numpy kernels vs naive path.

For random graphs, routings (single routes and multiroutings) and fault
sets, the :class:`~repro.core.route_index.RouteIndex` evaluation must
reproduce the naive computation *node for node*: the same surviving route
graph (same node set, same arc set) and the same diameter — through the
bitset kernel (the default), the historical set-based kernel, and (when
numpy is installed) the packed-uint64 numpy backend, all of which must
agree with each other value-for-value.  The bounded decision API must
satisfy ``surviving_diameter_at_most(F, b) <=> surviving_diameter(F) <= b``
for every bound, and delta-derived cursors must equal from-scratch
evaluations — on every backend.  This is the contract that lets every
campaign, battery and sweep in the library ride the fast paths without
changing any observable result.

Without numpy the suite still runs: the numpy legs are skipped (the other
three stay enforced), which is exactly the no-numpy CI configuration.
"""

import random as _random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    RouteIndex,
    surviving_diameter,
    surviving_diameter_at_most,
    surviving_route_graph,
)
from repro.core.np_kernel import numpy_available
from repro.core.routing import MultiRouting, Routing
from repro.graphs import generators
from repro.graphs.traversal import shortest_path

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not available"
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _shortest_path_routing(graph, rng):
    """A total routing assigning one BFS shortest path per ordered pair.

    Built directly (rather than via a paper construction) so the property
    test exercises arbitrary route shapes, including asymmetric ones: with
    probability 1/2 the routing is unidirectional and each direction gets an
    independently discovered path.
    """
    bidirectional = rng.random() < 0.5
    routing = Routing(graph, bidirectional=bidirectional)
    nodes = graph.nodes()
    for source in nodes:
        for target in nodes:
            if source == target or routing.has_route(source, target):
                continue
            path = shortest_path(graph, source, target)
            if path is not None:
                routing.set_route(source, target, path)
    return routing


def _random_multirouting(graph, rng):
    """A multirouting with the shortest path plus occasional detour routes."""
    routing = MultiRouting(graph, bidirectional=True)
    nodes = graph.nodes()
    for source in nodes:
        for target in nodes:
            if repr(source) >= repr(target):
                continue
            path = shortest_path(graph, source, target)
            if path is None:
                continue
            routing.add_route(source, target, path)
            if len(path) >= 2 and rng.random() < 0.5:
                # A detour through a neighbour of the source, when one exists.
                for middle in sorted(graph.neighbors(source), key=repr):
                    if middle in (source, target) or middle in path:
                        continue
                    tail = shortest_path(graph, middle, target)
                    if tail and source not in tail and len(set(tail)) == len(tail):
                        routing.add_route(source, target, [source] + tail)
                        break
    return routing


@st.composite
def graph_routing_faults(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    extra = draw(st.floats(min_value=0.0, max_value=0.4))
    multi = draw(st.booleans())
    graph = generators.random_connected_graph(n, extra_edge_probability=extra, seed=seed)
    rng = _random.Random(seed + 1)
    routing = (
        _random_multirouting(graph, rng) if multi else _shortest_path_routing(graph, rng)
    )
    fault_count = draw(st.integers(min_value=0, max_value=n))
    faults = set(rng.sample(graph.nodes(), fault_count))
    return graph, routing, faults


class TestIndexedEquivalence:
    @SETTINGS
    @given(graph_routing_faults())
    def test_surviving_graph_identical(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        naive = surviving_route_graph(graph, routing, faults)
        fast = surviving_route_graph(graph, routing, faults, index=index)
        assert fast == naive
        assert sorted(map(repr, fast.nodes())) == sorted(map(repr, naive.nodes()))
        assert sorted(map(repr, fast.edges())) == sorted(map(repr, naive.edges()))

    @SETTINGS
    @given(graph_routing_faults())
    def test_surviving_diameter_identical(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        assert surviving_diameter(
            graph, routing, faults, index=index
        ) == surviving_diameter(graph, routing, faults)

    @SETTINGS
    @given(graph_routing_faults())
    def test_index_is_reusable_across_fault_sets(self, case):
        """One index must serve many fault sets without cross-contamination."""
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        # Evaluate a different fault set first, then the real one.
        nodes = graph.nodes()
        other = set(nodes[: min(2, len(nodes))])
        index.surviving_diameter(other)
        assert surviving_diameter(
            graph, routing, faults, index=index
        ) == surviving_diameter(graph, routing, faults)

    @SETTINGS
    @given(graph_routing_faults())
    def test_all_kernels_agree(self, case):
        """Four-way equivalence: bitset == sets == numpy kernel == naive path.

        The numpy leg silently degrades to three-way where numpy is not
        installed (the dedicated numpy suite below is skipped explicitly).
        """
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        naive = surviving_diameter(graph, routing, faults)
        assert index.surviving_diameter(faults, kernel="bitset") == naive
        assert index.surviving_diameter(faults, kernel="sets") == naive
        if numpy_available():
            assert index.surviving_diameter(faults, kernel="numpy") == naive


class TestBoundedDecision:
    @SETTINGS
    @given(graph_routing_faults(), st.integers(min_value=0, max_value=14))
    def test_at_most_iff_diameter_leq_bound(self, case, bound):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        exact = surviving_diameter(graph, routing, faults)
        assert index.surviving_diameter_at_most(faults, bound) == (exact <= bound)
        assert surviving_diameter_at_most(
            graph, routing, faults, bound, index=index
        ) == (exact <= bound)
        assert surviving_diameter_at_most(graph, routing, faults, bound) == (
            exact <= bound
        )

    @SETTINGS
    @given(graph_routing_faults())
    def test_at_most_infinite_bound_always_holds(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        assert index.surviving_diameter_at_most(faults, float("inf"))

    @SETTINGS
    @given(graph_routing_faults(), st.integers(min_value=0, max_value=14))
    def test_capped_evaluation_is_exact_within_the_cap(self, case, cap):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        exact = surviving_diameter(graph, routing, faults)
        capped = index.surviving_diameter(faults, cap=cap)
        if exact <= cap:
            assert capped == exact
        else:
            assert capped > cap


class TestCursorEquivalence:
    @SETTINGS
    @given(graph_routing_faults())
    def test_cursor_matches_fresh_evaluation(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        cursor = index.cursor(faults)
        assert cursor.diameter() == surviving_diameter(graph, routing, faults)
        assert cursor.surviving_route_graph() == surviving_route_graph(
            graph, routing, faults
        )

    @SETTINGS
    @given(graph_routing_faults())
    def test_with_added_matches_from_scratch(self, case):
        """Delta-derived cursors equal from-scratch evaluation for every node."""
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        cursor = index.cursor(faults)
        for node in graph.nodes():
            derived = cursor.with_added(node)
            grown = set(faults) | {node}
            assert derived.diameter() == surviving_diameter(graph, routing, grown)
            assert derived.surviving_route_graph() == surviving_route_graph(
                graph, routing, grown
            )

    @SETTINGS
    @given(graph_routing_faults())
    def test_with_added_chain_matches_from_scratch(self, case):
        """A chain of derivations (the greedy adversary's access pattern)."""
        graph, routing, faults = case
        index = RouteIndex(graph, routing)
        cursor = index.cursor(())
        grown = set()
        for node in sorted(faults, key=repr):
            cursor = cursor.with_added(node)
            grown.add(node)
            assert cursor.diameter() == surviving_diameter(graph, routing, grown)


@requires_numpy
class TestNumpyBackendEquivalence:
    """The numpy backend must be observationally identical to the bitset one.

    Exercised through the same random graph/routing/fault generator as the
    bitset equivalence above — including multiroutings, whose killed-arc
    resolution is the trickiest part of the packed kernel — so every shape
    of surviving route graph crosses both kernels.
    """

    @SETTINGS
    @given(graph_routing_faults())
    def test_numpy_index_matches_naive(self, case):
        graph, routing, faults = case
        index = RouteIndex(graph, routing, backend="numpy")
        assert index.eval_backend == "numpy"
        assert index.surviving_diameter(faults) == surviving_diameter(
            graph, routing, faults
        )

    @SETTINGS
    @given(graph_routing_faults(), st.integers(min_value=0, max_value=14))
    def test_numpy_capped_evaluation_is_exact_within_the_cap(self, case, cap):
        graph, routing, faults = case
        index = RouteIndex(graph, routing, backend="numpy")
        exact = surviving_diameter(graph, routing, faults)
        capped = index.surviving_diameter(faults, cap=cap)
        if exact <= cap:
            assert capped == exact
        else:
            assert capped > cap

    @SETTINGS
    @given(graph_routing_faults(), st.integers(min_value=0, max_value=14))
    def test_numpy_bounded_decisions_match_bitset(self, case, bound):
        graph, routing, faults = case
        np_index = RouteIndex(graph, routing, backend="numpy")
        bs_index = RouteIndex(graph, routing, backend="bitset")
        assert np_index.surviving_diameter_at_most(
            faults, bound
        ) == bs_index.surviving_diameter_at_most(faults, bound)

    @SETTINGS
    @given(graph_routing_faults())
    def test_numpy_batch_matches_bitset_batch(self, case):
        """The batch API returns identical values (and types) per backend."""
        graph, routing, faults = case
        np_index = RouteIndex(graph, routing, backend="numpy")
        bs_index = RouteIndex(graph, routing, backend="bitset")
        ordered = sorted(faults, key=repr)
        battery = [frozenset(ordered[:k]) for k in range(len(ordered) + 1)]
        np_values = np_index.surviving_diameters(battery)
        bs_values = bs_index.surviving_diameters(battery)
        assert np_values == bs_values
        assert [type(v) for v in np_values] == [type(v) for v in bs_values]
        assert np_index.surviving_diameters(
            battery, cap=2
        ) == bs_index.surviving_diameters(battery, cap=2)

    @SETTINGS
    @given(graph_routing_faults())
    def test_numpy_cursor_chain_matches_bitset(self, case):
        """with_added chains agree across backends, caps and bounds included."""
        graph, routing, faults = case
        np_cursor = RouteIndex(graph, routing, backend="numpy").cursor(())
        bs_cursor = RouteIndex(graph, routing, backend="bitset").cursor(())
        for position, node in enumerate(sorted(faults, key=repr)):
            np_cursor = np_cursor.with_added(node)
            bs_cursor = bs_cursor.with_added(node)
            bound = position % 4
            assert np_cursor.diameter_at_most(bound) == bs_cursor.diameter_at_most(
                bound
            )
            assert np_cursor.diameter() == bs_cursor.diameter()


class TestBatchedCandidateEquivalence:
    """The batched candidate API must equal per-candidate evaluation exactly.

    ``batch_with_added`` (and its wrapper ``candidate_diameters``) is the
    substrate of the batched greedy adversary; these properties pin it to
    the one-at-a-time ground truth on every backend, capped and uncapped.
    A capped batch may legitimately return ``inf`` for values above the
    cap, but finite values must be exact.
    """

    def _backends(self):
        return ("bitset", "numpy") if numpy_available() else ("bitset",)

    @SETTINGS
    @given(graph_routing_faults())
    def test_batch_with_added_matches_with_added(self, case):
        graph, routing, faults = case
        candidates = [n for n in sorted(graph.nodes(), key=repr) if n not in faults]
        for backend in self._backends():
            index = RouteIndex(graph, routing, backend=backend)
            cursor = index.cursor(faults)
            trials = cursor.batch_with_added(candidates)
            reference = index.cursor(faults)
            for node, (child, value) in zip(candidates, trials):
                assert value == reference.with_added(node).diameter()
                assert child.diameter() == value

    @SETTINGS
    @given(graph_routing_faults(), st.integers(min_value=0, max_value=14))
    def test_capped_batch_finite_values_are_exact(self, case, cap):
        graph, routing, faults = case
        candidates = [n for n in sorted(graph.nodes(), key=repr) if n not in faults]
        inf = float("inf")
        for backend in self._backends():
            index = RouteIndex(graph, routing, backend=backend)
            trials = index.cursor(faults).batch_with_added(candidates, cap=cap)
            reference = index.cursor(faults)
            for node, (_child, value) in zip(candidates, trials):
                exact = reference.with_added(node).diameter()
                if exact <= cap:
                    assert value == exact
                elif value != inf:
                    # Above-cap values may come back exact from memoisation.
                    assert value == exact

    @SETTINGS
    @given(graph_routing_faults())
    def test_candidate_diameters_matches_from_scratch(self, case):
        graph, routing, faults = case
        candidates = [n for n in sorted(graph.nodes(), key=repr) if n not in faults]
        for backend in self._backends():
            index = RouteIndex(graph, routing, backend=backend)
            values = index.candidate_diameters(faults, candidates)
            for node, value in zip(candidates, values):
                assert value == surviving_diameter(
                    graph, routing, set(faults) | {node}
                )


class TestBatchedGreedyEquivalence:
    """Batched greedy must be byte-identical to the sequential adversary.

    The cap-pruned two-phase batch round, the sibling-bound memoisation and
    the numpy tensor path are all pure accelerations: for every graph,
    routing, seed, candidate budget and backend the chosen fault set — not
    just its diameter — must equal the sequential greedy's choice.
    """

    @SETTINGS
    @given(
        graph_routing_faults(),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_batched_equals_sequential_across_backends(
        self, case, size, candidate_limit, seed
    ):
        from repro.faults.adversary import greedy_adversarial_fault_set

        graph, routing, _faults = case
        backends = ("bitset", "numpy") if numpy_available() else ("bitset",)
        picks = []
        for backend in backends:
            for batched in (False, True):
                index = RouteIndex(graph, routing, backend=backend)
                fault_set = greedy_adversarial_fault_set(
                    graph,
                    routing,
                    size,
                    candidate_limit=candidate_limit,
                    seed=seed,
                    index=index,
                    batched=batched,
                )
                picks.append(tuple(sorted(fault_set, key=repr)))
        assert len(set(picks)) == 1

    @SETTINGS
    @given(
        graph_routing_faults(),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_index_greedy_equals_sequential(self, case, size, seed):
        """The index-only entry point agrees with its own sequential path."""
        from repro.faults.adversary import greedy_fault_set_from_index

        graph, routing, _faults = case
        index = RouteIndex(graph, routing)
        batched = greedy_fault_set_from_index(
            index, size, candidate_limit=4, seed=seed, batched=True
        )
        sequential = greedy_fault_set_from_index(
            index, size, candidate_limit=4, seed=seed, batched=False
        )
        assert sorted(batched, key=repr) == sorted(sequential, key=repr)

"""Property-based tests (hypothesis) for routing-model and theorem invariants.

These tests sample random graphs and random fault sets and check the
invariants that the paper's proofs rest on:

* routes never conflict and always follow the miserly model;
* the surviving route graph is monotone under fault-set inclusion (arc-wise);
* the constructions' guarantees hold for randomly sampled admissible fault
  sets (a randomised complement to the exhaustive checks elsewhere).
"""

import random as _random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    build_routing,
    kernel_routing,
    surviving_diameter,
    surviving_route_graph,
)
from repro.core.verification import check_routing_model
from repro.graphs import generators, node_connectivity

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def two_connected_graph(draw):
    """A random graph guaranteed to be at least 2-connected (Harary + extras)."""
    n = draw(st.integers(min_value=8, max_value=16))
    k = draw(st.sampled_from([2, 3]))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    extra = draw(st.floats(min_value=0.0, max_value=0.1))
    return generators.random_k_connected_graph(n, k, extra_edge_probability=extra, seed=seed)


@st.composite
def cycle_with_faults(draw):
    """A cycle plus a random admissible fault (|F| <= t = 1).

    The minimum size is 10 because shorter cycles lack the two-trees property
    (the depth-2 neighbourhoods of any two nodes overlap).
    """
    n = draw(st.integers(min_value=10, max_value=20))
    fault = draw(st.integers(min_value=0, max_value=n - 1))
    return generators.cycle_graph(n), {fault}


class TestRoutingModelInvariants:
    @SETTINGS
    @given(two_connected_graph())
    def test_kernel_routing_is_well_formed(self, graph):
        result = kernel_routing(graph)
        assert check_routing_model(result.routing) == []
        # every non-kernel node keeps t+1 disjoint-route targets in M
        kernel_set = set(result.concentrator)
        for node in graph.nodes():
            if node in kernel_set:
                continue
            targets = [m for m in kernel_set if result.routing.has_route(node, m)]
            assert len(targets) >= result.t + 1

    @SETTINGS
    @given(two_connected_graph(), st.integers(min_value=0, max_value=10 ** 6))
    def test_surviving_graph_monotone_under_fault_inclusion(self, graph, seed):
        result = kernel_routing(graph)
        rng = _random.Random(seed)
        nodes = graph.nodes()
        small = set(rng.sample(nodes, 1))
        large = small | set(rng.sample(nodes, 2))
        surviving_small = surviving_route_graph(graph, result.routing, small)
        surviving_large = surviving_route_graph(graph, result.routing, large)
        # Every arc of the more-faulty graph also exists with fewer faults.
        for u, v in surviving_large.edges():
            assert surviving_small.has_edge(u, v)

    @SETTINGS
    @given(two_connected_graph())
    def test_fault_free_surviving_graph_contains_underlying_edges(self, graph):
        result = kernel_routing(graph)
        surviving = surviving_route_graph(graph, result.routing, ())
        for u, v in graph.edges():
            assert surviving.has_edge(u, v)
            assert surviving.has_edge(v, u)


class TestTheoremInvariantsRandomised:
    @SETTINGS
    @given(two_connected_graph(), st.integers(min_value=0, max_value=10 ** 6))
    def test_theorem3_random_fault_sets(self, graph, seed):
        """Kernel routing: (2t, t) for random admissible fault sets."""
        result = kernel_routing(graph)
        t = result.t
        rng = _random.Random(seed)
        faults = set(rng.sample(graph.nodes(), t)) if t > 0 else set()
        bound = max(2 * t, 4)
        assert surviving_diameter(graph, result.routing, faults) <= bound

    @SETTINGS
    @given(cycle_with_faults())
    def test_circular_on_cycles_random_fault(self, graph_and_fault):
        graph, faults = graph_and_fault
        result = build_routing(graph, strategy="circular")
        assert surviving_diameter(graph, result.routing, faults) <= 6

    @SETTINGS
    @given(cycle_with_faults())
    def test_bipolar_on_cycles_random_fault(self, graph_and_fault):
        graph, faults = graph_and_fault
        result = build_routing(graph, strategy="bipolar-uni")
        assert surviving_diameter(graph, result.routing, faults) <= 4

    @SETTINGS
    @given(two_connected_graph(), st.integers(min_value=0, max_value=10 ** 6))
    def test_theorem4_random_fault_sets(self, graph, seed):
        """Kernel routing: diameter <= 4 for |F| <= floor(t/2)."""
        result = kernel_routing(graph)
        budget = result.t // 2
        rng = _random.Random(seed)
        faults = set(rng.sample(graph.nodes(), budget)) if budget else set()
        assert surviving_diameter(graph, result.routing, faults) <= 4

"""Unit tests for the ConstructionResult / Guarantee containers."""

import pytest

from repro.core import ConstructionResult, Guarantee, Routing
from repro.graphs import generators


class TestGuarantee:
    def test_str_with_source(self):
        guarantee = Guarantee(4, 2, source="Theorem 13")
        assert "(4, 2)-tolerant" in str(guarantee)
        assert "Theorem 13" in str(guarantee)

    def test_str_without_source(self):
        assert str(Guarantee(6, 1)) == "(6, 1)-tolerant"

    def test_fields(self):
        guarantee = Guarantee(diameter_bound=5, max_faults=3)
        assert guarantee.diameter_bound == 5
        assert guarantee.max_faults == 3


class TestConstructionResult:
    @pytest.fixture
    def result(self):
        graph = generators.cycle_graph(6)
        routing = Routing(graph, name="demo")
        routing.add_all_edge_routes()
        return ConstructionResult(
            routing=routing,
            scheme="demo",
            t=1,
            guarantee=Guarantee(6, 1, "Lemma X"),
            concentrator=[0, 3],
            details={"k": 2, "extra": [1, 2, 3]},
        )

    def test_graph_property(self, result):
        assert result.graph is result.routing.graph

    def test_describe_mentions_key_fields(self, result):
        text = result.describe()
        assert "demo" in text
        assert "(6, 1)-tolerant" in text
        assert "concentrator" in text
        assert "k" in text

    def test_repr(self, result):
        text = repr(result)
        assert "demo" in text
        assert "t=1" in text

    def test_defaults(self):
        graph = generators.cycle_graph(4)
        routing = Routing(graph)
        result = ConstructionResult(
            routing=routing, scheme="bare", t=0, guarantee=Guarantee(1, 0)
        )
        assert result.concentrator == []
        assert result.details == {}

"""Unit tests for the surviving route graph and its diameter."""

import pytest

from repro.core import (
    MultiRouting,
    Routing,
    broadcast_round_bound,
    route_survives,
    routes_affected_by,
    surviving_diameter,
    surviving_distance,
    surviving_eccentricities,
    surviving_route_graph,
)
from repro.exceptions import FaultModelError
from repro.graphs import DiGraph, generators


@pytest.fixture
def cycle6_routing():
    """A hand-built bidirectional routing on C_6: edges plus two chords via paths."""
    graph = generators.cycle_graph(6)
    routing = Routing(graph, bidirectional=True, name="hand")
    routing.add_all_edge_routes()
    routing.set_route(0, 3, [0, 1, 2, 3])
    routing.set_route(1, 4, [1, 2, 3, 4])
    return graph, routing


class TestRouteSurvives:
    def test_no_faults(self):
        assert route_survives([0, 1, 2], set())

    def test_internal_fault(self):
        assert not route_survives([0, 1, 2], {1})

    def test_endpoint_fault(self):
        assert not route_survives([0, 1, 2], {2})

    def test_unrelated_fault(self):
        assert route_survives([0, 1, 2], {7})


class TestSurvivingGraph:
    def test_no_faults_has_all_routes(self, cycle6_routing):
        graph, routing = cycle6_routing
        surviving = surviving_route_graph(graph, routing, ())
        assert isinstance(surviving, DiGraph)
        assert surviving.number_of_nodes() == 6
        assert surviving.has_edge(0, 3)
        assert surviving.has_edge(3, 0)
        assert surviving.has_edge(0, 1)

    def test_faulty_nodes_removed(self, cycle6_routing):
        graph, routing = cycle6_routing
        surviving = surviving_route_graph(graph, routing, {2})
        assert not surviving.has_node(2)
        assert surviving.number_of_nodes() == 5

    def test_routes_through_fault_removed(self, cycle6_routing):
        graph, routing = cycle6_routing
        surviving = surviving_route_graph(graph, routing, {2})
        # Route 0-1-2-3 passes through the faulty node 2.
        assert not surviving.has_edge(0, 3)
        # The edge routes not involving 2 survive.
        assert surviving.has_edge(0, 1)
        assert surviving.has_edge(4, 5)

    def test_bidirectional_symmetry(self, cycle6_routing):
        graph, routing = cycle6_routing
        surviving = surviving_route_graph(graph, routing, {2})
        for u, v in surviving.edges():
            assert surviving.has_edge(v, u)

    def test_unknown_fault_rejected(self, cycle6_routing):
        graph, routing = cycle6_routing
        with pytest.raises(FaultModelError):
            surviving_route_graph(graph, routing, {"ghost"})

    def test_unidirectional_routing_gives_asymmetric_graph(self):
        graph = generators.cycle_graph(4)
        routing = Routing(graph, bidirectional=False)
        routing.set_route(0, 1, [0, 1])
        surviving = surviving_route_graph(graph, routing, ())
        assert surviving.has_edge(0, 1)
        assert not surviving.has_edge(1, 0)

    def test_multirouting_any_survivor_counts(self):
        graph = generators.cycle_graph(6)
        multi = MultiRouting(graph)
        multi.add_route(0, 3, [0, 1, 2, 3])
        multi.add_route(0, 3, [0, 5, 4, 3])
        surviving = surviving_route_graph(graph, multi, {1})
        assert surviving.has_edge(0, 3)
        surviving2 = surviving_route_graph(graph, multi, {1, 4})
        assert not surviving2.has_edge(0, 3)


class TestSurvivingDiameter:
    def test_fault_free_diameter(self, cycle6_routing):
        graph, routing = cycle6_routing
        # With only edge routes + the two chords {0,3} and {1,4}, the node 2
        # still needs three route traversals to reach 5.
        assert surviving_diameter(graph, routing, ()) == 3

    def test_faults_can_increase_diameter(self, cycle6_routing):
        graph, routing = cycle6_routing
        assert surviving_diameter(graph, routing, {1}) >= surviving_diameter(graph, routing, ())

    def test_disconnection_gives_infinity(self):
        graph = generators.cycle_graph(6)
        routing = Routing(graph)
        routing.add_all_edge_routes()
        assert surviving_diameter(graph, routing, {0, 3}) == float("inf")

    def test_distance_and_eccentricities(self, cycle6_routing):
        graph, routing = cycle6_routing
        assert surviving_distance(graph, routing, (), 0, 3) == 1
        assert surviving_distance(graph, routing, {2}, 0, 3) == 3
        eccentricities = surviving_eccentricities(graph, routing, ())
        assert set(eccentricities) == set(range(6))
        assert max(eccentricities.values()) == surviving_diameter(graph, routing, ())

    def test_distance_faulty_endpoint_rejected(self, cycle6_routing):
        graph, routing = cycle6_routing
        with pytest.raises(FaultModelError):
            surviving_distance(graph, routing, {3}, 0, 3)

    def test_broadcast_round_bound_equals_diameter(self, cycle6_routing):
        graph, routing = cycle6_routing
        assert broadcast_round_bound(graph, routing, {2}) == surviving_diameter(
            graph, routing, {2}
        )


class TestRoutesAffectedBy:
    def test_affected_pairs(self, cycle6_routing):
        graph, routing = cycle6_routing
        affected = routes_affected_by(routing, {2})
        assert (0, 3) in affected
        assert (3, 0) in affected
        assert (1, 2) in affected  # endpoint faulty counts too
        assert (4, 5) not in affected

    def test_no_faults_nothing_affected(self, cycle6_routing):
        _graph, routing = cycle6_routing
        assert routes_affected_by(routing, set()) == []

"""RouteIndex tunables: the BFS density threshold and strategy introspection."""

from __future__ import annotations

import pytest

from repro.core import RouteIndex, kernel_routing
from repro.core.route_index import (
    DEFAULT_DENSITY_THRESHOLD,
    STRATEGY_BATCHED,
    STRATEGY_PER_SOURCE,
)
from repro.faults.adversary import random_fault_sets
from repro.graphs import generators


@pytest.fixture(scope="module")
def workload():
    graph = generators.circulant_graph(24, [1, 2])
    result = kernel_routing(graph)
    return graph, result.routing


class TestDensityThreshold:
    def test_default_threshold(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        assert index.density_threshold == DEFAULT_DENSITY_THRESHOLD

    def test_constructor_override(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing, density_threshold=3)
        assert index.density_threshold == 3

    def test_env_override(self, workload, monkeypatch):
        graph, routing = workload
        monkeypatch.setenv("REPRO_BFS_DENSITY_THRESHOLD", "5")
        assert RouteIndex(graph, routing).density_threshold == 5
        # The constructor argument wins over the environment.
        assert RouteIndex(graph, routing, density_threshold=2).density_threshold == 2

    def test_invalid_env_value(self, workload, monkeypatch):
        graph, routing = workload
        monkeypatch.setenv("REPRO_BFS_DENSITY_THRESHOLD", "not-a-number")
        with pytest.raises(ValueError, match="REPRO_BFS_DENSITY_THRESHOLD"):
            RouteIndex(graph, routing)

    def test_invalid_threshold(self, workload):
        graph, routing = workload
        with pytest.raises(ValueError):
            RouteIndex(graph, routing, density_threshold=0)

    def test_threshold_never_changes_values(self, workload):
        """The strategy switch is a performance knob, not a semantics knob."""
        graph, routing = workload
        low = RouteIndex(graph, routing, density_threshold=1)
        high = RouteIndex(graph, routing, density_threshold=10_000)
        assert low.preferred_strategy() != high.preferred_strategy()
        for fault_set in random_fault_sets(graph.nodes(), 3, 10, seed=3):
            assert low.surviving_diameter(fault_set) == high.surviving_diameter(
                fault_set
            )
            assert low.cursor(fault_set).diameter() == high.cursor(
                fault_set
            ).diameter()


class TestAutoCalibration:
    def test_auto_threshold_calibrates_to_clamped_integer(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing, density_threshold="auto")
        assert isinstance(index.density_threshold, int)
        assert 1 <= index.density_threshold <= 1024

    def test_auto_via_env(self, workload, monkeypatch):
        graph, routing = workload
        monkeypatch.setenv("REPRO_BFS_DENSITY_THRESHOLD", "auto")
        index = RouteIndex(graph, routing)
        assert isinstance(index.density_threshold, int)
        assert 1 <= index.density_threshold <= 1024

    def test_calibration_never_changes_values(self, workload):
        """Calibration is a timing knob; evaluation results are invariant."""
        graph, routing = workload
        reference = RouteIndex(graph, routing)
        calibrated = RouteIndex(graph, routing, density_threshold="auto")
        for fault_set in random_fault_sets(graph.nodes(), 2, 8, seed=7):
            assert calibrated.surviving_diameter(
                fault_set
            ) == reference.surviving_diameter(fault_set)

    def test_explicit_recalibration_returns_new_threshold(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        returned = index.calibrate_density_threshold(repeats=1)
        assert returned == index.density_threshold
        assert 1 <= returned <= 1024


class TestPreferredStrategy:
    def test_extremes_select_both_strategies(self, workload):
        graph, routing = workload
        # threshold=1: k*arcs <= n^2 easily -> batched; huge threshold ->
        # per-source.
        assert (
            RouteIndex(graph, routing, density_threshold=1).preferred_strategy()
            == STRATEGY_BATCHED
        )
        assert (
            RouteIndex(graph, routing, density_threshold=10_000).preferred_strategy()
            == STRATEGY_PER_SOURCE
        )

    def test_strategy_accepts_fault_sets(self, workload):
        graph, routing = workload
        index = RouteIndex(graph, routing)
        strategy = index.preferred_strategy(faults=[graph.nodes()[0]])
        assert strategy in (STRATEGY_BATCHED, STRATEGY_PER_SOURCE)

    def test_campaign_rows_record_strategy(self, workload):
        graph, routing = workload
        from repro.faults import CampaignEngine

        engine = CampaignEngine(
            graph, routing, index=RouteIndex(graph, routing, density_threshold=1)
        )
        row = engine.run_campaign(1, samples=5, seed=0)
        assert row.bfs_strategy == STRATEGY_BATCHED
        assert row.as_row()["bfs"] == STRATEGY_BATCHED

"""Unit tests for the (d, f)-tolerance checking machinery."""

import pytest

from repro.core import (
    Routing,
    check_tolerance,
    diameter_profile,
    kernel_routing,
    verify_construction,
    worst_case_diameter,
)
from repro.faults import FaultSet, all_fault_sets
from repro.graphs import generators


@pytest.fixture(scope="module")
def edge_only_routing():
    """Edge routes only on C_8: the weakest sensible routing (diam = graph diam)."""
    graph = generators.cycle_graph(8)
    routing = Routing(graph, name="edges-only")
    routing.add_all_edge_routes()
    return graph, routing


class TestWorstCaseDiameter:
    def test_no_faults_baseline(self, edge_only_routing):
        graph, routing = edge_only_routing
        worst, worst_set, evaluated = worst_case_diameter(
            graph, routing, [FaultSet(())]
        )
        assert worst == 4  # diameter of C_8
        assert evaluated == 1
        assert len(worst_set) == 0

    def test_worst_fault_identified(self, edge_only_routing):
        graph, routing = edge_only_routing
        fault_sets = [FaultSet(()), FaultSet({0})]
        worst, worst_set, evaluated = worst_case_diameter(graph, routing, fault_sets)
        # Removing one node of a cycle routed edge-only leaves a path: diameter 6.
        assert worst == 6
        assert worst_set == FaultSet({0})
        assert evaluated == 2

    def test_disconnection_dominates(self, edge_only_routing):
        graph, routing = edge_only_routing
        fault_sets = [FaultSet({0}), FaultSet({0, 4})]
        worst, worst_set, _ = worst_case_diameter(graph, routing, fault_sets)
        assert worst == float("inf")
        assert worst_set == FaultSet({0, 4})


class TestCheckTolerance:
    def test_exhaustive_mode_selected_for_small_problems(self, edge_only_routing):
        graph, routing = edge_only_routing
        report = check_tolerance(graph, routing, diameter_bound=6, max_faults=1)
        assert report.exhaustive
        assert report.evaluated == 1 + 8
        assert report.holds

    def test_violation_detected(self, edge_only_routing):
        graph, routing = edge_only_routing
        report = check_tolerance(graph, routing, diameter_bound=4, max_faults=1)
        assert not report.holds
        assert report.worst_diameter == 6

    def test_battery_mode_for_large_problems(self, edge_only_routing):
        graph, routing = edge_only_routing
        report = check_tolerance(
            graph, routing, diameter_bound=6, max_faults=1, exhaustive_limit=2
        )
        assert not report.exhaustive
        assert report.evaluated >= 2

    def test_explicit_fault_sets(self, edge_only_routing):
        graph, routing = edge_only_routing
        report = check_tolerance(
            graph,
            routing,
            diameter_bound=6,
            max_faults=1,
            fault_sets=[FaultSet({3})],
        )
        assert report.evaluated == 1
        assert not report.exhaustive

    def test_report_repr(self, edge_only_routing):
        graph, routing = edge_only_routing
        report = check_tolerance(graph, routing, diameter_bound=6, max_faults=1)
        text = repr(report)
        assert "holds" in text
        assert "exhaustive" in text

    def test_violation_short_circuits_with_exact_witness(self, edge_only_routing):
        """The decision path stops at the first violating fault set."""
        graph, routing = edge_only_routing
        report = check_tolerance(graph, routing, diameter_bound=4, max_faults=1)
        assert not report.holds
        # Enumeration order: the empty set (diameter 4, within bound), then
        # {0} which violates -> exactly two evaluations, exact witness value.
        assert report.evaluated == 2
        assert report.worst_fault_set.nodes() == frozenset({0})
        assert report.worst_diameter == 6

    def test_exhaustive_report_identical_across_worker_counts(self, edge_only_routing):
        graph, routing = edge_only_routing
        sequential = check_tolerance(graph, routing, diameter_bound=6, max_faults=2)
        parallel = check_tolerance(
            graph, routing, diameter_bound=6, max_faults=2, workers=2
        )
        assert sequential.worst_diameter == parallel.worst_diameter
        assert sequential.evaluated == parallel.evaluated
        assert sequential.holds == parallel.holds

    def test_infinite_bound_always_holds(self, edge_only_routing):
        graph, routing = edge_only_routing
        report = check_tolerance(
            graph, routing, diameter_bound=float("inf"), max_faults=2
        )
        assert report.holds
        assert report.exhaustive
        # Disconnecting pairs exist at |F| = 2; with an infinite bound they
        # are not violations but must still be reported as the worst case.
        assert report.worst_diameter == float("inf")


class TestVerifyConstruction:
    def test_uses_recorded_guarantee(self):
        graph = generators.cycle_graph(10)
        result = kernel_routing(graph)
        report = verify_construction(result)
        assert report.claimed_diameter == result.guarantee.diameter_bound
        assert report.max_faults == result.guarantee.max_faults
        assert report.holds

    def test_explicit_fault_sets(self):
        graph = generators.cycle_graph(10)
        result = kernel_routing(graph)
        report = verify_construction(
            result, fault_sets=list(all_fault_sets(graph.nodes(), 1))
        )
        assert report.evaluated == 11


class TestDiameterProfile:
    def test_profile_matches_individual_calls(self, edge_only_routing):
        graph, routing = edge_only_routing
        fault_sets = [FaultSet(()), FaultSet({0}), FaultSet({1, 5})]
        profile = diameter_profile(graph, routing, fault_sets)
        assert len(profile) == 3
        assert profile[0][1] == 4
        assert profile[1][1] == 6

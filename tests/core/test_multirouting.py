"""Unit tests for the Section 6 multiroutings."""

import pytest

from repro.core import (
    MultiRouting,
    full_multirouting,
    kernel_multirouting,
    single_tree_multirouting,
    surviving_diameter,
    verify_construction,
)
from repro.exceptions import ConstructionError
from repro.faults import all_fault_sets
from repro.graphs import generators, synthetic


@pytest.fixture(scope="module")
def circulant():
    """C_10(1,2): 4-connected, small enough for exhaustive checks."""
    return generators.circulant_graph(10, [1, 2])


@pytest.fixture(scope="module")
def full_on_circulant(circulant):
    return full_multirouting(circulant)


@pytest.fixture(scope="module")
def kernel_multi_on_circulant(circulant):
    return kernel_multirouting(circulant)


@pytest.fixture(scope="module")
def single_tree_on_circulant(circulant):
    return single_tree_multirouting(circulant)


class TestFullMultirouting:
    def test_scheme_and_guarantee(self, full_on_circulant):
        assert full_on_circulant.scheme == "multi-full"
        assert full_on_circulant.guarantee.diameter_bound == 1
        assert full_on_circulant.guarantee.max_faults == 3

    def test_routes_per_pair(self, full_on_circulant, circulant):
        routing = full_on_circulant.routing
        assert isinstance(routing, MultiRouting)
        n = circulant.number_of_nodes()
        assert len(routing) == n * (n - 1)
        assert routing.max_parallelism() == 4

    def test_diameter_one_under_faults(self, full_on_circulant, circulant):
        for faults in ({0}, {0, 5}, {1, 4, 8}):
            assert surviving_diameter(circulant, full_on_circulant.routing, faults) == 1

    def test_exhaustive_verification(self, full_on_circulant):
        report = verify_construction(full_on_circulant)
        assert report.exhaustive
        assert report.worst_diameter == 1

    def test_insufficient_connectivity_rejected(self):
        with pytest.raises(ConstructionError):
            full_multirouting(generators.cycle_graph(8), t=2)

    def test_negative_t(self):
        with pytest.raises(ConstructionError):
            full_multirouting(generators.cycle_graph(8), t=-1)


class TestKernelMultirouting:
    def test_scheme_and_guarantee(self, kernel_multi_on_circulant):
        assert kernel_multi_on_circulant.scheme == "multi-kernel"
        assert kernel_multi_on_circulant.guarantee.diameter_bound == 3

    def test_concentrator_pairs_have_parallel_routes(self, kernel_multi_on_circulant):
        routing = kernel_multi_on_circulant.routing
        members = kernel_multi_on_circulant.concentrator
        t = kernel_multi_on_circulant.t
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                assert len(routing.get_routes(first, second)) >= t + 1

    def test_diameter_bound_three(self, kernel_multi_on_circulant, circulant):
        report = verify_construction(kernel_multi_on_circulant)
        assert report.exhaustive
        assert report.holds
        assert report.worst_diameter <= 3

    def test_explicit_separating_set(self, circulant):
        from repro.graphs import minimum_separator

        separator = minimum_separator(circulant)
        result = kernel_multirouting(circulant, separating_set=separator)
        assert set(result.concentrator) == set(separator)

    def test_bad_separating_set(self, circulant):
        with pytest.raises(ConstructionError):
            kernel_multirouting(circulant, separating_set={0, 1})


class TestSingleTreeMultirouting:
    def test_scheme(self, single_tree_on_circulant):
        assert single_tree_on_circulant.scheme == "multi-single-tree"

    def test_parallel_routes_bounded_by_two(self, single_tree_on_circulant):
        # The paper's point: at most two parallel routes per pair suffice.
        assert single_tree_on_circulant.routing.max_parallelism() <= 2

    def test_tolerance(self, single_tree_on_circulant):
        report = verify_construction(single_tree_on_circulant)
        assert report.exhaustive
        assert report.holds

    def test_on_kernel_test_graph(self):
        graph = synthetic.kernel_test_graph(t=1)
        result = single_tree_multirouting(graph, t=1)
        report = verify_construction(result, exhaustive_limit=500)
        assert report.holds

    def test_bad_separating_set(self, circulant):
        with pytest.raises(ConstructionError):
            single_tree_multirouting(circulant, separating_set={0, 1})


class TestComparisons:
    def test_route_table_sizes_ordering(
        self, full_on_circulant, kernel_multi_on_circulant, single_tree_on_circulant
    ):
        """The full multirouting pays for its diameter-1 guarantee with a much
        larger route table than the concentrator-based variants."""
        full_routes = full_on_circulant.routing.route_count()
        kernel_routes = kernel_multi_on_circulant.routing.route_count()
        single_routes = single_tree_on_circulant.routing.route_count()
        assert full_routes > kernel_routes
        assert full_routes > single_routes

    def test_guarantee_ordering(
        self, full_on_circulant, kernel_multi_on_circulant, single_tree_on_circulant
    ):
        assert (
            full_on_circulant.guarantee.diameter_bound
            <= kernel_multi_on_circulant.guarantee.diameter_bound
            <= single_tree_on_circulant.guarantee.diameter_bound
        )

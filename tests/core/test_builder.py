"""Unit tests for the build_routing facade and strategy selection."""

import pytest

from repro.core import (
    AUTO_ORDER,
    STRATEGIES,
    applicable_strategies,
    available_strategies,
    build_routing,
    verify_construction,
)
from repro.exceptions import ConstructionError
from repro.graphs import generators, synthetic


class TestStrategyRegistry:
    def test_available_strategies(self):
        names = available_strategies()
        assert "auto" in names
        assert "kernel" in names
        assert "tricircular" in names
        assert "bipolar-uni" in names

    def test_auto_order_subset_of_strategies(self):
        assert set(AUTO_ORDER) <= set(STRATEGIES)

    def test_auto_order_prefers_stronger_bounds(self):
        assert AUTO_ORDER.index("tricircular") < AUTO_ORDER.index("circular")
        assert AUTO_ORDER.index("bipolar-uni") < AUTO_ORDER.index("kernel")


class TestExplicitStrategies:
    def test_kernel_by_name(self):
        result = build_routing(generators.cycle_graph(10), strategy="kernel")
        assert result.scheme == "kernel"

    def test_circular_by_name(self):
        result = build_routing(generators.cycle_graph(12), strategy="circular")
        assert result.scheme == "circular"

    def test_bipolar_by_name(self):
        graph, r1, r2 = synthetic.two_trees_graph(t=1)
        result = build_routing(graph, strategy="bipolar-uni", roots=(r1, r2))
        assert result.scheme == "bipolar-uni"

    def test_multirouting_by_name(self):
        result = build_routing(generators.circulant_graph(8, [1, 2]), strategy="multi-full")
        assert result.scheme == "multi-full"

    def test_clique_by_name(self):
        result = build_routing(generators.cycle_graph(10), strategy="kernel+clique")
        assert result.scheme == "kernel+clique"

    def test_tricircular_small_by_name(self):
        graph, flowers = synthetic.flower_graph(t=1, k=9)
        result = build_routing(
            graph, strategy="tricircular-small", t=1, concentrator=flowers
        )
        assert result.scheme == "tricircular-small"

    def test_unknown_strategy(self):
        with pytest.raises(ConstructionError):
            build_routing(generators.cycle_graph(8), strategy="teleportation")

    def test_strategy_requirement_failure_propagates(self):
        with pytest.raises(Exception):
            build_routing(generators.hypercube_graph(3), strategy="bipolar-uni")


class TestAutoSelection:
    def test_small_cycle_prefers_bipolar(self):
        # C_12 has the two-trees property but no 15-node neighbourhood set.
        result = build_routing(generators.cycle_graph(12))
        assert result.scheme == "bipolar-uni"
        assert verify_construction(result, exhaustive_limit=150).holds

    def test_long_cycle_gets_tricircular(self):
        # C_45 fits the full 6t+9 = 15 neighbourhood set.
        result = build_routing(generators.cycle_graph(45))
        assert result.scheme == "tricircular"

    def test_hypercube_falls_back_to_kernel(self):
        # Q_3: no two-trees property (girth 4) and no large neighbourhood set.
        result = build_routing(generators.hypercube_graph(3))
        assert result.scheme == "kernel"

    def test_complete_graph_fails_everything(self):
        with pytest.raises(ConstructionError):
            build_routing(generators.complete_graph(5))

    def test_explicit_t_passed_through(self):
        result = build_routing(generators.cycle_graph(12), strategy="kernel", t=1)
        assert result.t == 1


class TestApplicableStrategies:
    def test_cycle12(self):
        strategies = applicable_strategies(generators.cycle_graph(12))
        assert "bipolar-uni" in strategies
        assert "circular" in strategies
        assert "kernel" in strategies
        assert "tricircular" not in strategies

    def test_cycle45(self):
        strategies = applicable_strategies(generators.cycle_graph(45))
        assert strategies[0] == "tricircular"

    def test_hypercube(self):
        strategies = applicable_strategies(generators.hypercube_graph(3))
        assert "bipolar-uni" not in strategies
        assert "kernel" in strategies

    def test_ordering_matches_auto_order(self):
        strategies = applicable_strategies(generators.cycle_graph(45))
        positions = [AUTO_ORDER.index(name) for name in strategies]
        assert positions == sorted(positions)

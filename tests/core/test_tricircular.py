"""Unit tests for the tri-circular construction (Theorem 13 and Remark 14)."""

import pytest

from repro.core import (
    check_routing_model,
    check_tcirc_property,
    surviving_diameter,
    tricircular_routing,
    verify_construction,
)
from repro.core.tolerance import check_tolerance
from repro.exceptions import ConstructionError, PropertyNotSatisfiedError
from repro.faults import FaultSet, targeted_fault_sets
from repro.graphs import generators, is_neighborhood_set, synthetic


class TestTricircularConstruction:
    def test_scheme_and_guarantee(self, tricircular_on_flower):
        assert tricircular_on_flower.scheme == "tricircular"
        assert tricircular_on_flower.guarantee.diameter_bound == 4
        assert tricircular_on_flower.guarantee.max_faults == 1
        assert tricircular_on_flower.details["k"] == 15

    def test_concentrator_partition(self, tricircular_on_flower):
        components = tricircular_on_flower.details["components"]
        assert len(components) == 3
        assert all(len(component) == 5 for component in components)
        flat = [m for component in components for m in component]
        assert flat == tricircular_on_flower.concentrator

    def test_concentrator_is_neighborhood_set(self, tricircular_on_flower):
        assert is_neighborhood_set(
            tricircular_on_flower.graph, tricircular_on_flower.concentrator
        )

    def test_routing_model_invariants(self, tricircular_on_flower):
        assert check_routing_model(tricircular_on_flower.routing) == []

    def test_offsets_standard_variant(self, tricircular_on_flower):
        # Theorem 13 uses offsets 1 .. t+1 inside each circular component.
        assert tricircular_on_flower.details["t_circ2_offsets"] == [1, 2]

    def test_small_variant(self):
        graph, flowers = synthetic.flower_graph(t=1, k=9)
        result = tricircular_routing(graph, t=1, concentrator=flowers, small=True)
        assert result.scheme == "tricircular-small"
        assert result.guarantee.diameter_bound == 5
        assert result.details["k"] == 9
        assert result.details["component_size"] == 3

    def test_missing_neighborhood_set_raises(self):
        # C_12 only has neighbourhood sets of size 4 < 15.
        with pytest.raises(PropertyNotSatisfiedError):
            tricircular_routing(generators.cycle_graph(12), t=1)

    def test_invalid_concentrator(self):
        graph, flowers = synthetic.flower_graph(t=1, k=15)
        with pytest.raises(ConstructionError):
            tricircular_routing(graph, t=1, concentrator=flowers[:5])
        with pytest.raises(PropertyNotSatisfiedError):
            tricircular_routing(
                graph, t=1, concentrator=[("ring", i) for i in range(15)]
            )

    def test_negative_t(self):
        with pytest.raises(ConstructionError):
            tricircular_routing(generators.cycle_graph(12), t=-1)


class TestTricircularTolerance:
    def test_theorem13_single_faults_exhaustive(self, tricircular_on_flower):
        report = verify_construction(tricircular_on_flower, exhaustive_limit=100)
        assert report.exhaustive
        assert report.holds
        assert report.worst_diameter <= 4

    def test_tcirc_property_under_concentrator_attack(self, tricircular_on_flower):
        members = tricircular_on_flower.concentrator
        assert check_tcirc_property(tricircular_on_flower, {members[0]}, radius=2) == []

    def test_targeted_attacks(self, tricircular_on_flower):
        graph = tricircular_on_flower.graph
        routing = tricircular_on_flower.routing
        for fault_set in targeted_fault_sets(
            graph, 1, tricircular_on_flower.concentrator, routing, per_target_limit=10
        ):
            assert surviving_diameter(graph, routing, fault_set) <= 4

    def test_small_variant_tolerance(self):
        graph, flowers = synthetic.flower_graph(t=1, k=9)
        result = tricircular_routing(graph, t=1, concentrator=flowers, small=True)
        report = verify_construction(result, exhaustive_limit=100)
        assert report.exhaustive
        assert report.holds
        assert report.worst_diameter <= 5

    def test_fault_free_diameter(self, tricircular_on_flower):
        assert (
            surviving_diameter(
                tricircular_on_flower.graph, tricircular_on_flower.routing, ()
            )
            <= 4
        )

    def test_tricircular_beats_circular_bound(self, tricircular_on_flower):
        """The tri-circular guarantee (4) is strictly stronger than circular (6)."""
        assert tricircular_on_flower.guarantee.diameter_bound < 6

"""Unit tests for the beyond-connectivity analysis (Open Problem 3)."""

import pytest

from repro.core import (
    Routing,
    component_diameters,
    graceful_degradation_profile,
    kernel_routing,
    surviving_components,
    worst_component_diameter,
)
from repro.graphs import generators


@pytest.fixture(scope="module")
def circulant_kernel():
    graph = generators.circulant_graph(12, [1, 2])
    return graph, kernel_routing(graph)


class TestSurvivingComponents:
    def test_no_faults_single_component(self, circulant_kernel):
        graph, _result = circulant_kernel
        components = surviving_components(graph, set())
        assert len(components) == 1
        assert len(components[0]) == 12

    def test_disconnecting_faults_split(self):
        graph = generators.cycle_graph(10)
        components = surviving_components(graph, {0, 5})
        assert len(components) == 2
        assert sorted(len(c) for c in components) == [4, 4]

    def test_all_faulty(self):
        graph = generators.cycle_graph(4)
        assert surviving_components(graph, {0, 1, 2, 3}) == []


class TestComponentDiameters:
    def test_within_budget_single_finite_component(self, circulant_kernel):
        graph, result = circulant_kernel
        entries = component_diameters(graph, result.routing, {0})
        assert len(entries) == 1
        assert entries[0]["size"] == 11
        assert entries[0]["diameter"] <= 2 * result.t

    def test_disconnected_cycle_edge_routing(self):
        graph = generators.cycle_graph(10)
        routing = Routing(graph)
        routing.add_all_edge_routes()
        entries = component_diameters(graph, routing, {0, 5})
        assert len(entries) == 2
        # Each component is a path of 4 nodes served by its edge routes only:
        # internal diameter 3 (finite even though the whole graph split).
        assert all(entry["diameter"] == 3 for entry in entries)

    def test_routing_can_fail_inside_component(self):
        # Routes that leave the component die with the faults: a routing with
        # only "long way round" routes serves nothing once the cycle is cut.
        graph = generators.cycle_graph(6)
        routing = Routing(graph, bidirectional=False)
        routing.set_route(1, 2, [1, 0, 5, 4, 3, 2])
        entries = component_diameters(graph, routing, {0, 3})
        sizes = sorted(entry["size"] for entry in entries)
        assert sizes == [2, 2]
        assert any(entry["diameter"] == float("inf") for entry in entries)

    def test_worst_component_diameter(self, circulant_kernel):
        graph, result = circulant_kernel
        assert worst_component_diameter(graph, result.routing, {0}) <= 2 * result.t
        assert worst_component_diameter(graph, result.routing, set(graph.nodes())) == 0.0

    def test_indexed_evaluation_matches_naive(self, circulant_kernel):
        from repro.core import RouteIndex

        graph, result = circulant_kernel
        index = RouteIndex(graph, result.routing)
        for faults in [set(), {0}, {0, 3, 6}, set(graph.nodes()[:5])]:
            assert component_diameters(
                graph, result.routing, faults, index=index
            ) == component_diameters(graph, result.routing, faults)
            assert worst_component_diameter(
                graph, result.routing, faults, index=index
            ) == worst_component_diameter(graph, result.routing, faults)


class TestGracefulDegradation:
    def test_profile_shape(self, circulant_kernel):
        graph, result = circulant_kernel
        points = graceful_degradation_profile(
            graph, result.routing, fault_counts=[0, 1, 3, 5], samples=4, seed=0
        )
        assert [point.faults for point in points] == [0, 1, 3, 5]
        assert points[0].disconnected_fraction == 0.0
        assert points[0].max_worst_component_diameter <= 2 * result.t
        for point in points:
            assert point.samples == 4
            row = point.as_row()
            assert row["faults"] == point.faults

    def test_within_budget_never_disconnects(self, circulant_kernel):
        graph, result = circulant_kernel
        points = graceful_degradation_profile(
            graph, result.routing, fault_counts=[result.t], samples=6, seed=1
        )
        assert points[0].disconnected_fraction == 0.0

    def test_reproducible(self, circulant_kernel):
        graph, result = circulant_kernel
        first = graceful_degradation_profile(graph, result.routing, [2], samples=5, seed=9)
        second = graceful_degradation_profile(graph, result.routing, [2], samples=5, seed=9)
        assert first[0].as_row() == second[0].as_row()

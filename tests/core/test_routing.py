"""Unit tests for the Routing / MultiRouting model classes."""

import pytest

from repro.core import MultiRouting, Routing
from repro.exceptions import ConflictingRouteError, InvalidRouteError
from repro.graphs import generators


@pytest.fixture
def cycle6():
    return generators.cycle_graph(6)


class TestRouteAssignment:
    def test_set_and_get(self, cycle6):
        routing = Routing(cycle6)
        routing.set_route(0, 2, [0, 1, 2])
        assert routing.get_route(0, 2) == (0, 1, 2)
        assert routing.has_route(0, 2)

    def test_bidirectional_closure(self, cycle6):
        routing = Routing(cycle6, bidirectional=True)
        routing.set_route(0, 2, [0, 1, 2])
        assert routing.get_route(2, 0) == (2, 1, 0)

    def test_unidirectional_no_closure(self, cycle6):
        routing = Routing(cycle6, bidirectional=False)
        routing.set_route(0, 2, [0, 1, 2])
        assert routing.get_route(2, 0) is None

    def test_missing_route_is_none(self, cycle6):
        routing = Routing(cycle6)
        assert routing.get_route(0, 3) is None
        assert not routing.has_route(0, 3)

    def test_identical_reassignment_is_noop(self, cycle6):
        routing = Routing(cycle6)
        routing.set_route(0, 2, [0, 1, 2])
        routing.set_route(0, 2, [0, 1, 2])
        assert len(routing) == 2  # both directions

    def test_conflicting_reassignment_rejected(self, cycle6):
        routing = Routing(cycle6)
        routing.set_route(0, 2, [0, 1, 2])
        with pytest.raises(ConflictingRouteError):
            routing.set_route(0, 2, [0, 5, 4, 3, 2])

    def test_conflict_detected_via_closure(self, cycle6):
        routing = Routing(cycle6, bidirectional=True)
        routing.set_route(0, 2, [0, 1, 2])
        with pytest.raises(ConflictingRouteError):
            routing.set_route(2, 0, [2, 3, 4, 5, 0])

    def test_route_must_be_simple_path(self, cycle6):
        routing = Routing(cycle6)
        with pytest.raises(InvalidRouteError):
            routing.set_route(0, 2, [0, 3, 2])  # 0-3 not an edge

    def test_route_must_match_endpoints(self, cycle6):
        routing = Routing(cycle6)
        with pytest.raises(InvalidRouteError):
            routing.set_route(0, 2, [0, 1])

    def test_route_needs_two_nodes(self, cycle6):
        routing = Routing(cycle6)
        with pytest.raises(InvalidRouteError):
            routing.set_route(0, 2, [0])

    def test_route_rejects_same_endpoints(self, cycle6):
        routing = Routing(cycle6)
        with pytest.raises(InvalidRouteError):
            routing.set_route(0, 0, [0, 1, 0])

    def test_set_edge_route(self, cycle6):
        routing = Routing(cycle6)
        routing.set_edge_route(0, 1)
        assert routing.get_route(0, 1) == (0, 1)
        assert routing.get_route(1, 0) == (1, 0)

    def test_set_edge_route_nonadjacent(self, cycle6):
        routing = Routing(cycle6)
        with pytest.raises(InvalidRouteError):
            routing.set_edge_route(0, 3)

    def test_add_all_edge_routes_bidirectional(self, cycle6):
        routing = Routing(cycle6)
        routing.add_all_edge_routes()
        assert len(routing) == 2 * cycle6.number_of_edges()
        for u, v in cycle6.edges():
            assert routing.get_route(u, v) == (u, v)
            assert routing.get_route(v, u) == (v, u)

    def test_add_all_edge_routes_unidirectional(self, cycle6):
        routing = Routing(cycle6, bidirectional=False)
        routing.add_all_edge_routes()
        assert len(routing) == 2 * cycle6.number_of_edges()


class TestTableQueries:
    def test_pairs_and_items(self, cycle6):
        routing = Routing(cycle6)
        routing.set_route(0, 2, [0, 1, 2])
        assert set(routing.pairs()) == {(0, 2), (2, 0)}
        items = dict(routing.items())
        assert items[(0, 2)] == (0, 1, 2)

    def test_routes_returns_copy(self, cycle6):
        routing = Routing(cycle6)
        routing.set_route(0, 2, [0, 1, 2])
        table = routing.routes()
        table[(0, 3)] = (0, 1, 2, 3)
        assert not routing.has_route(0, 3)

    def test_contains(self, cycle6):
        routing = Routing(cycle6)
        routing.set_route(0, 2, [0, 1, 2])
        assert (0, 2) in routing
        assert (0, 4) not in routing

    def test_is_total(self, cycle6):
        routing = Routing(generators.complete_graph(3))
        assert not routing.is_total()
        routing.add_all_edge_routes()
        assert routing.is_total()

    def test_is_symmetric(self, cycle6):
        routing = Routing(cycle6, bidirectional=False)
        routing.set_route(0, 2, [0, 1, 2])
        assert not routing.is_symmetric()
        routing.set_route(2, 0, [2, 1, 0])
        assert routing.is_symmetric()

    def test_max_and_total_route_length(self, cycle6):
        routing = Routing(cycle6)
        assert routing.max_route_length() == 0
        routing.set_route(0, 3, [0, 1, 2, 3])
        routing.set_route(0, 1, [0, 1])
        assert routing.max_route_length() == 3
        assert routing.total_route_length() == 2 * (3 + 1)

    def test_routed_pairs_from(self, cycle6):
        routing = Routing(cycle6)
        routing.set_route(0, 2, [0, 1, 2])
        routing.set_route(0, 3, [0, 1, 2, 3])
        assert set(routing.routed_pairs_from(0)) == {2, 3}

    def test_nodes_on_route(self, cycle6):
        routing = Routing(cycle6)
        routing.set_route(0, 3, [0, 1, 2, 3])
        assert routing.nodes_on_route(0, 3) == {0, 1, 2, 3}
        with pytest.raises(KeyError):
            routing.nodes_on_route(3, 5)

    def test_copy_independent(self, cycle6):
        routing = Routing(cycle6, name="orig")
        routing.set_route(0, 2, [0, 1, 2])
        clone = routing.copy()
        clone.set_route(0, 3, [0, 1, 2, 3])
        assert not routing.has_route(0, 3)
        assert clone.name == "orig"

    def test_repr(self, cycle6):
        routing = Routing(cycle6, name="kernel")
        assert "kernel" in repr(routing)
        assert "bidirectional" in repr(routing)


class TestMultiRouting:
    def test_add_and_get(self, cycle6):
        multi = MultiRouting(cycle6)
        multi.add_route(0, 3, [0, 1, 2, 3])
        multi.add_route(0, 3, [0, 5, 4, 3])
        assert len(multi.get_routes(0, 3)) == 2
        assert len(multi.get_routes(3, 0)) == 2  # bidirectional

    def test_duplicates_ignored(self, cycle6):
        multi = MultiRouting(cycle6)
        multi.add_route(0, 3, [0, 1, 2, 3])
        multi.add_route(0, 3, [0, 1, 2, 3])
        assert len(multi.get_routes(0, 3)) == 1

    def test_unidirectional(self, cycle6):
        multi = MultiRouting(cycle6, bidirectional=False)
        multi.add_route(0, 3, [0, 1, 2, 3])
        assert multi.get_routes(3, 0) == []

    def test_invalid_path_rejected(self, cycle6):
        multi = MultiRouting(cycle6)
        with pytest.raises(InvalidRouteError):
            multi.add_route(0, 3, [0, 2, 3])
        with pytest.raises(InvalidRouteError):
            multi.add_route(0, 3, [0, 1, 2])
        with pytest.raises(InvalidRouteError):
            multi.add_route(0, 0, [0])

    def test_counts(self, cycle6):
        multi = MultiRouting(cycle6)
        assert multi.max_parallelism() == 0
        multi.add_route(0, 3, [0, 1, 2, 3])
        multi.add_route(0, 3, [0, 5, 4, 3])
        multi.add_route(1, 2, [1, 2])
        assert multi.max_parallelism() == 2
        assert multi.route_count() == 2 * 3  # both directions
        assert len(multi) == 4
        assert multi.has_route(0, 3)
        assert not multi.has_route(0, 4)
        assert set(multi.pairs()) == {(0, 3), (3, 0), (1, 2), (2, 1)}

    def test_repr(self, cycle6):
        multi = MultiRouting(cycle6, name="full")
        assert "full" in repr(multi)

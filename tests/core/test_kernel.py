"""Unit tests for the kernel construction (Theorems 3 and 4)."""

import pytest

from repro.core import (
    check_routing_model,
    kernel_guarantees,
    kernel_routing,
    surviving_diameter,
    verify_construction,
)
from repro.core.tolerance import check_tolerance
from repro.exceptions import ConstructionError
from repro.faults import all_fault_sets
from repro.graphs import generators, is_separating_set, synthetic


class TestKernelConstruction:
    def test_scheme_and_guarantee(self, kernel_on_cycle):
        assert kernel_on_cycle.scheme == "kernel"
        assert kernel_on_cycle.t == 1
        assert kernel_on_cycle.guarantee.diameter_bound == 4
        assert kernel_on_cycle.guarantee.max_faults == 0  # floor(1/2)

    def test_concentrator_is_separating_set(self, kernel_on_cycle):
        graph = kernel_on_cycle.graph
        assert is_separating_set(graph, set(kernel_on_cycle.concentrator))
        assert len(kernel_on_cycle.concentrator) == kernel_on_cycle.t + 1

    def test_routing_model_invariants(self, kernel_on_cycle):
        assert check_routing_model(kernel_on_cycle.routing) == []

    def test_every_non_kernel_node_has_t_plus_1_kernel_routes(self, kernel_on_cycle):
        routing = kernel_on_cycle.routing
        kernel_set = set(kernel_on_cycle.concentrator)
        t = kernel_on_cycle.t
        for node in kernel_on_cycle.graph.nodes():
            if node in kernel_set:
                continue
            targets = {m for m in kernel_set if routing.has_route(node, m)}
            assert len(targets) >= t + 1

    def test_edge_routes_present(self, kernel_on_cycle):
        routing = kernel_on_cycle.routing
        for u, v in kernel_on_cycle.graph.edges():
            assert routing.get_route(u, v) == (u, v)

    def test_bidirectional(self, kernel_on_cycle):
        assert kernel_on_cycle.routing.bidirectional
        assert kernel_on_cycle.routing.is_symmetric()

    def test_explicit_separating_set(self):
        graph = generators.cycle_graph(10)
        result = kernel_routing(graph, separating_set={0, 5})
        assert sorted(result.concentrator) == [0, 5]

    def test_explicit_separating_set_validation(self):
        graph = generators.cycle_graph(10)
        with pytest.raises(ConstructionError):
            kernel_routing(graph, separating_set={0, 1})  # does not separate
        with pytest.raises(ConstructionError):
            kernel_routing(graph, separating_set={3})  # too small for t+1=2

    def test_negative_t_rejected(self):
        with pytest.raises(ConstructionError):
            kernel_routing(generators.cycle_graph(6), t=-1)

    def test_t_larger_than_connectivity_rejected(self):
        graph = generators.cycle_graph(8)
        with pytest.raises(ConstructionError):
            kernel_routing(graph, t=3)


class TestKernelTolerance:
    def test_theorem4_exhaustive_on_cycle(self):
        """Theorem 4: (4, floor(t/2))-tolerant; for t=2 graphs that is 1 fault."""
        graph = synthetic.kernel_test_graph(t=2)
        result = kernel_routing(graph, t=2)
        report = check_tolerance(
            graph,
            result.routing,
            diameter_bound=4,
            max_faults=1,
            fault_sets=all_fault_sets(graph.nodes(), 1),
        )
        assert report.holds

    def test_theorem3_exhaustive_on_cycle(self):
        """Theorem 3: (2t, t)-tolerant; verified exhaustively for t=1 on C_10."""
        graph = generators.cycle_graph(10)
        result = kernel_routing(graph)
        report = check_tolerance(
            graph,
            result.routing,
            diameter_bound=max(2 * result.t, 4),
            max_faults=result.t,
            fault_sets=all_fault_sets(graph.nodes(), result.t),
        )
        assert report.holds
        assert report.exhaustive is False  # explicit fault sets supplied

    def test_theorem3_on_kernel_graph(self, kernel_on_kernel_graph):
        graph = kernel_on_kernel_graph.graph
        report = check_tolerance(
            graph,
            kernel_on_kernel_graph.routing,
            diameter_bound=2 * kernel_on_kernel_graph.t,
            max_faults=kernel_on_kernel_graph.t,
            exhaustive_limit=3000,
        )
        assert report.holds

    def test_verify_construction_default_guarantee(self, kernel_on_kernel_graph):
        report = verify_construction(kernel_on_kernel_graph, exhaustive_limit=2000)
        assert report.holds

    def test_fault_free_diameter_small(self, kernel_on_cycle):
        assert (
            surviving_diameter(kernel_on_cycle.graph, kernel_on_cycle.routing, ())
            <= 4
        )

    def test_hypercube_kernel(self):
        graph = generators.hypercube_graph(3)
        result = kernel_routing(graph)
        report = verify_construction(result, exhaustive_limit=200)
        assert report.holds
        assert result.t == 2


class TestKernelGuarantees:
    def test_guarantee_pair(self):
        guarantees = kernel_guarantees(3)
        assert guarantees[0].diameter_bound == 6
        assert guarantees[0].max_faults == 3
        assert guarantees[1].diameter_bound == 4
        assert guarantees[1].max_faults == 1

    def test_small_t_floor(self):
        guarantees = kernel_guarantees(1)
        assert guarantees[0].diameter_bound == 4  # max(2t, 4)
        assert guarantees[1].max_faults == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            kernel_guarantees(-1)

    def test_details_record_theorem3(self, kernel_on_cycle):
        theorem3 = kernel_on_cycle.details["theorem3_guarantee"]
        assert theorem3.max_faults == kernel_on_cycle.t

"""Unit tests for routing-table statistics (length, stretch, load)."""

import pytest

from repro.core import (
    Routing,
    concentrator_load_share,
    full_multirouting,
    kernel_routing,
    node_loads,
    per_node_table_sizes,
    route_lengths,
    route_stretches,
    routing_statistics,
)
from repro.graphs import generators


@pytest.fixture
def chord_routing():
    """Edge routes on C_8 plus one long chord route 0..4 (length 4)."""
    graph = generators.cycle_graph(8)
    routing = Routing(graph, name="chords")
    routing.add_all_edge_routes()
    routing.set_route(0, 4, [0, 1, 2, 3, 4])
    return graph, routing


class TestBasicStatistics:
    def test_route_lengths(self, chord_routing):
        _graph, routing = chord_routing
        lengths = route_lengths(routing)
        assert len(lengths) == len(routing)
        assert max(lengths) == 4
        assert min(lengths) == 1

    def test_route_stretches(self, chord_routing):
        _graph, routing = chord_routing
        stretches = route_stretches(routing)
        # The chord 0->4 has graph distance 4, so its stretch is exactly 1;
        # every edge route also has stretch 1.
        assert max(stretches) == 1.0

    def test_stretch_greater_than_one(self):
        graph = generators.cycle_graph(8)
        routing = Routing(graph)
        routing.set_route(0, 2, [0, 7, 6, 5, 4, 3, 2])  # the long way round
        stretches = route_stretches(routing)
        assert max(stretches) == pytest.approx(3.0)

    def test_node_loads(self, chord_routing):
        graph, routing = chord_routing
        loads = node_loads(routing)
        assert set(loads) == set(graph.nodes())
        # Node 2 lies on the chord (both directions) plus its 4 edge routes.
        assert loads[2] == 4 + 2
        assert loads[6] == 4

    def test_per_node_table_sizes(self, chord_routing):
        _graph, routing = chord_routing
        sizes = per_node_table_sizes(routing)
        assert sizes[0] == 2 + 1  # two edge routes + the chord
        assert sizes[6] == 2

    def test_statistics_aggregate(self, chord_routing):
        _graph, routing = chord_routing
        stats = routing_statistics(routing)
        assert stats.routed_pairs == len(routing)
        assert stats.stored_routes == len(routing)
        assert stats.max_route_length == 4
        assert stats.mean_route_length > 1
        assert stats.max_stretch == 1.0
        assert stats.max_node_load >= stats.mean_node_load
        assert stats.max_load_node is not None
        row = stats.as_row()
        assert row["pairs"] == len(routing)

    def test_empty_routing(self):
        graph = generators.cycle_graph(5)
        stats = routing_statistics(Routing(graph))
        assert stats.stored_routes == 0
        assert stats.mean_route_length == 0.0
        assert stats.max_node_load == 0


class TestConstructionStatistics:
    def test_kernel_routing_statistics(self):
        graph = generators.circulant_graph(12, [1, 2])
        result = kernel_routing(graph)
        stats = routing_statistics(result.routing)
        assert stats.routed_pairs == len(result.routing)
        assert stats.max_stretch >= 1.0
        # Adjacent pairs use direct edges, so minimum stretch is exactly 1.
        assert min(route_stretches(result.routing)) == 1.0

    def test_concentrator_load_share(self):
        graph = generators.circulant_graph(12, [1, 2])
        result = kernel_routing(graph)
        share = concentrator_load_share(result.routing, result.concentrator)
        assert 0.0 < share < 1.0
        # The share is exactly the concentrator's fraction of all route visits.
        loads = node_loads(result.routing)
        expected = sum(loads[m] for m in result.concentrator) / sum(loads.values())
        assert share == pytest.approx(expected)

    def test_concentrator_load_share_empty(self):
        graph = generators.cycle_graph(6)
        assert concentrator_load_share(Routing(graph), [0]) == 0.0

    def test_multirouting_statistics(self):
        graph = generators.circulant_graph(8, [1, 2])
        result = full_multirouting(graph)
        stats = routing_statistics(result.routing)
        assert stats.stored_routes > stats.routed_pairs  # parallel routes
        assert stats.max_stretch >= 1.0

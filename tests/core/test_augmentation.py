"""Unit tests for the Section 6 network-change construction (kernel + clique)."""

import pytest

from repro.core import (
    added_edge_cost,
    clique_augmented_kernel_routing,
    surviving_diameter,
    verify_construction,
)
from repro.exceptions import ConstructionError
from repro.graphs import generators, synthetic


@pytest.fixture(scope="module")
def augmented_on_circulant():
    return clique_augmented_kernel_routing(generators.circulant_graph(10, [1, 2]))


class TestAugmentedConstruction:
    def test_scheme_and_guarantee(self, augmented_on_circulant):
        assert augmented_on_circulant.scheme == "kernel+clique"
        assert augmented_on_circulant.guarantee.diameter_bound == 3
        assert augmented_on_circulant.guarantee.max_faults == augmented_on_circulant.t

    def test_concentrator_is_clique_in_augmented_graph(self, augmented_on_circulant):
        augmented = augmented_on_circulant.details["augmented_graph"]
        members = augmented_on_circulant.concentrator
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                assert augmented.has_edge(first, second)

    def test_added_edge_count_within_bound(self, augmented_on_circulant):
        t = augmented_on_circulant.t
        added = augmented_on_circulant.details["added_edge_count"]
        assert added <= added_edge_cost(t)
        assert added == len(augmented_on_circulant.details["added_edges"])

    def test_original_graph_unmodified(self, augmented_on_circulant):
        original = augmented_on_circulant.details["original_graph"]
        augmented = augmented_on_circulant.details["augmented_graph"]
        assert augmented.number_of_edges() >= original.number_of_edges()
        for u, v in augmented_on_circulant.details["added_edges"]:
            assert not original.has_edge(u, v)

    def test_routing_lives_on_augmented_graph(self, augmented_on_circulant):
        assert augmented_on_circulant.graph is augmented_on_circulant.details["augmented_graph"]

    def test_tolerance_diameter_three(self, augmented_on_circulant):
        report = verify_construction(augmented_on_circulant)
        assert report.exhaustive
        assert report.holds
        assert report.worst_diameter <= 3

    def test_on_kernel_test_graph(self):
        graph = synthetic.kernel_test_graph(t=2)
        result = clique_augmented_kernel_routing(graph, t=2)
        report = verify_construction(result, exhaustive_limit=2000)
        assert report.holds

    def test_on_cycle(self):
        graph = generators.cycle_graph(10)
        result = clique_augmented_kernel_routing(graph)
        assert result.details["added_edge_count"] <= 1
        assert surviving_diameter(result.graph, result.routing, ()) <= 3

    def test_explicit_separating_set_validation(self):
        graph = generators.cycle_graph(10)
        with pytest.raises(ConstructionError):
            clique_augmented_kernel_routing(graph, separating_set={0, 1})

    def test_negative_t(self):
        with pytest.raises(ConstructionError):
            clique_augmented_kernel_routing(generators.cycle_graph(8), t=-1)


class TestAddedEdgeCost:
    def test_formula(self):
        assert added_edge_cost(0) == 0
        assert added_edge_cost(1) == 1
        assert added_edge_cost(3) == 6
        assert added_edge_cost(10) == 55

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            added_edge_cost(-1)

"""Experiment E03 — the circular routing (Theorem 10).

Theorem 10: any ``(t+1)``-connected graph with a neighbourhood set of size
``t + 1`` (``t`` even) or ``t + 2`` (``t`` odd) has a bidirectional
``(6, t)``-tolerant circular routing.  The bench covers cycles (``t = 1``),
flower graphs with designated concentrators (``t = 2, 3``) and the
``K = 2t + 1`` "wide" variant of Lemmas 6/7.
"""

import pytest

from repro.analysis import ExperimentRunner, format_table
from repro.core import circular_routing
from repro.graphs import generators, synthetic


def _circular_workloads():
    flower2, flowers2 = synthetic.flower_graph(t=2, k=5)
    flower3, flowers3 = synthetic.flower_graph(t=3, k=6)
    return [
        ("cycle-12", generators.cycle_graph(12), 1, None, False),
        ("cycle-24", generators.cycle_graph(24), 1, None, False),
        ("flower-t2-k5", flower2, 2, flowers2, False),
        ("flower-t3-k6", flower3, 3, flowers3, False),
        ("flower-t2-k5 (wide)", flower2, 2, flowers2, True),
    ]


@pytest.mark.benchmark(group="circular")
def test_theorem10_circular_6_t(benchmark, experiment_log):
    """E03: worst surviving diameter <= 6 for |F| <= t."""

    def run():
        runner = ExperimentRunner(exhaustive_limit=800, seed=0)
        for name, graph, t, concentrator, wide in _circular_workloads():
            runner.run(
                "E03/Theorem10",
                graph,
                lambda g, t=t, c=concentrator, w=wide: circular_routing(
                    g, t=t, concentrator=c, wide=w
                ),
                max_faults=t,
                diameter_bound=6,
            )
        return runner

    runner = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(runner.rows(), caption="E03 / Theorem 10: circular routing, |F| <= t"))
    for record in runner.records:
        experiment_log(
            "E03/Theorem10",
            "<= 6",
            record.measured_worst,
            record.graph_name,
            "exhaustive" if record.exhaustive else "adversarial battery",
        )
        assert record.holds, record.as_row()


@pytest.mark.benchmark(group="circular")
def test_circular_construction_cost(benchmark):
    """Construction-cost microbenchmark for the circular routing."""
    graph, flowers = synthetic.flower_graph(t=2, k=5)
    result = benchmark(lambda: circular_routing(graph, t=2, concentrator=flowers))
    assert result.scheme == "circular"

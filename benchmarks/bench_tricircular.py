"""Experiments E04 / E05 — the tri-circular routing (Theorem 13 and Remark 14).

* **Theorem 13**: a neighbourhood set of ``6t + 9`` nodes yields a
  ``(4, t)``-tolerant bidirectional routing.
* **Remark 14**: ``3t + 3`` / ``3t + 6`` nodes suffice for a ``(5, t)``-tolerant
  variant.

Workloads: long cycles (whose natural spacing provides large neighbourhood
sets) and flower graphs with designated concentrators.
"""

import pytest

from repro.analysis import ExperimentRunner, format_table
from repro.core import tricircular_routing
from repro.graphs import generators, synthetic


@pytest.mark.benchmark(group="tricircular")
def test_theorem13_tricircular_4_t(benchmark, experiment_log):
    """E04: worst surviving diameter <= 4 for |F| <= t (K = 6t + 9)."""
    flower, flowers = synthetic.flower_graph(t=1, k=15)
    workloads = [
        ("cycle-45", generators.cycle_graph(45), 1, None),
        ("flower-t1-k15", flower, 1, flowers),
    ]

    def run():
        runner = ExperimentRunner(exhaustive_limit=100, seed=0)
        for name, graph, t, concentrator in workloads:
            runner.run(
                "E04/Theorem13",
                graph,
                lambda g, t=t, c=concentrator: tricircular_routing(g, t=t, concentrator=c),
                max_faults=t,
                diameter_bound=4,
            )
        return runner

    runner = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(runner.rows(), caption="E04 / Theorem 13: tri-circular routing (K = 6t+9)"))
    for record in runner.records:
        experiment_log(
            "E04/Theorem13",
            "<= 4",
            record.measured_worst,
            record.graph_name,
            "exhaustive" if record.exhaustive else "adversarial battery",
        )
        assert record.holds, record.as_row()


@pytest.mark.benchmark(group="tricircular")
def test_remark14_small_tricircular_5_t(benchmark, experiment_log):
    """E05: worst surviving diameter <= 5 for |F| <= t (K = 3t+3 / 3t+6)."""
    flower1, flowers1 = synthetic.flower_graph(t=1, k=9)
    flower2, flowers2 = synthetic.flower_graph(t=2, k=9)
    workloads = [
        ("cycle-27", generators.cycle_graph(27), 1, None),
        ("flower-t1-k9", flower1, 1, flowers1),
        ("flower-t2-k9", flower2, 2, flowers2),
    ]

    def run():
        runner = ExperimentRunner(exhaustive_limit=150, seed=0)
        for name, graph, t, concentrator in workloads:
            runner.run(
                "E05/Remark14",
                graph,
                lambda g, t=t, c=concentrator: tricircular_routing(
                    g, t=t, concentrator=c, small=True
                ),
                max_faults=t,
                diameter_bound=5,
            )
        return runner

    runner = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(runner.rows(), caption="E05 / Remark 14: small tri-circular routing"))
    for record in runner.records:
        experiment_log(
            "E05/Remark14",
            "<= 5",
            record.measured_worst,
            record.graph_name,
            "exhaustive" if record.exhaustive else "adversarial battery",
        )
        assert record.holds, record.as_row()


@pytest.mark.benchmark(group="tricircular")
def test_tricircular_construction_cost(benchmark):
    """Construction-cost microbenchmark for the tri-circular routing."""
    graph, flowers = synthetic.flower_graph(t=1, k=15)
    result = benchmark(lambda: tricircular_routing(graph, t=1, concentrator=flowers))
    assert result.scheme == "tricircular"

"""Experiments E14 / E15 — ablations beyond the paper's theorems.

The paper proves one number per construction (the worst surviving diameter);
these ablation benches quantify the *costs* each design choice carries and the
behaviour outside the proved regime:

* **E14 — cost ablation**: on one graph where all single-routing constructions
  apply (a long cycle), compare route-table size, mean/max route length,
  stretch, node load and the measured worst surviving diameter across the
  kernel, circular, small/full tri-circular and bipolar routings.  The shape
  to reproduce: stronger diameter guarantees are bought with more routes and
  heavier concentrator machinery, never with longer individual routes.
* **E15 — graceful degradation (Open Problem 3)**: push the fault count past
  the connectivity and measure the worst *per-component* surviving diameter.
  The paper leaves the question open; the measurement shows the concentrator
  constructions keep serving the surviving components at small diameters well
  past the proved budget, while the plain kernel routing degrades sooner.
"""

import pytest

from repro.analysis import format_table
from repro.core import (
    build_routing,
    check_tolerance,
    graceful_degradation_profile,
    routing_statistics,
)
from repro.graphs import generators


ABLATION_GRAPH = generators.cycle_graph(45)
ABLATION_STRATEGIES = [
    "kernel",
    "circular",
    "tricircular-small",
    "tricircular",
    "bipolar-uni",
    "bipolar-bi",
]


@pytest.mark.benchmark(group="ablation")
def test_construction_cost_ablation(benchmark, experiment_log):
    """E14: guarantee vs route-table cost across all constructions on one graph."""

    def run():
        rows = []
        for strategy in ABLATION_STRATEGIES:
            result = build_routing(ABLATION_GRAPH, strategy=strategy, t=1)
            stats = routing_statistics(result.routing)
            report = check_tolerance(
                result.graph,
                result.routing,
                result.guarantee.diameter_bound,
                result.guarantee.max_faults,
                exhaustive_limit=50,
                concentrator=result.concentrator,
                seed=0,
            )
            rows.append(
                {
                    "construction": result.scheme,
                    "guarantee_d": result.guarantee.diameter_bound,
                    "measured_worst": report.worst_diameter,
                    "routes": stats.routed_pairs,
                    "mean_len": round(stats.mean_route_length, 2),
                    "max_len": stats.max_route_length,
                    "max_stretch": round(stats.max_stretch, 2),
                    "max_load": stats.max_node_load,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, caption="E14: construction cost ablation on cycle-45 (t = 1)"))
    for row in rows:
        experiment_log(
            "E14/ablation",
            f"<= {row['guarantee_d']}",
            f"{row['measured_worst']} ({row['routes']} routes)",
            f"cycle-45 / {row['construction']}",
        )
        assert row["measured_worst"] <= row["guarantee_d"]
    by_scheme = {row["construction"]: row for row in rows}
    # The tri-circular routing (bound 4) stores more routes than the circular
    # routing (bound 6), which stores more than the kernel routing: the
    # stronger guarantee is bought with table size.
    assert by_scheme["tricircular"]["routes"] > by_scheme["circular"]["routes"]
    assert by_scheme["circular"]["routes"] > by_scheme["kernel"]["routes"]


@pytest.mark.benchmark(group="ablation")
def test_graceful_degradation_beyond_budget(benchmark, experiment_log):
    """E15: per-component surviving diameters past the connectivity (Open Problem 3)."""
    graph = generators.circulant_graph(18, [1, 2])  # kappa = 4, t = 3
    strategies = ["kernel", "kernel+clique", "multi-kernel"]

    def run():
        rows = []
        for strategy in strategies:
            result = build_routing(graph, strategy=strategy, t=3)
            profile = graceful_degradation_profile(
                graph, result.routing, fault_counts=[1, 3, 5, 7], samples=6, seed=2
            )
            for point in profile:
                row = point.as_row()
                row["construction"] = result.scheme
                rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            columns=["construction", "faults", "samples", "disconnected", "mean_comp_diam", "max_comp_diam"],
            caption="E15: graceful degradation past the fault budget (circulant-18(1,2), t = 3)",
        )
    )
    for row in rows:
        experiment_log(
            "E15/degradation",
            "finite component diameters",
            f"{row['max_comp_diam']} at {row['faults']} faults",
            f"{row['construction']}",
        )
        # Within the proved budget nothing disconnects and the bound holds.
        if row["faults"] <= 3:
            assert row["disconnected"] == 0.0
            assert row["max_comp_diam"] != float("inf")

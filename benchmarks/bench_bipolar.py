"""Experiments E06 / E07 — the bipolar routings (Theorems 20 and 23).

* **Theorem 20**: any graph with the two-trees property has a unidirectional
  ``(4, t)``-tolerant bipolar routing.
* **Theorem 23**: the same hypothesis yields a bidirectional ``(5, t)``-tolerant
  routing.

Workloads: cycles (the simplest two-trees graphs), the synthetic two-trees
graphs at ``t = 1, 2, 3``, and a sparse random graph from the Theorem 25
regime that happens to satisfy the property.
"""

import pytest

from repro.analysis import ExperimentRunner, format_table
from repro.core import bidirectional_bipolar_routing, unidirectional_bipolar_routing
from repro.graphs import generators, has_two_trees_property, synthetic


def _bipolar_workloads():
    workloads = [
        ("cycle-14", generators.cycle_graph(14), 1, None),
    ]
    for t in (1, 2, 3):
        graph, r1, r2 = synthetic.two_trees_graph(t=t)
        workloads.append((f"two-trees-t{t}", graph, t, (r1, r2)))
    # A sparse random graph in the Lemma 24 regime; only added if the sampled
    # instance actually has the property (it does w.h.p. for these parameters).
    sparse = generators.gnp_random_graph(60, 0.035, seed=20)
    from repro.graphs import is_connected, node_connectivity

    if is_connected(sparse) and node_connectivity(sparse) >= 2 and has_two_trees_property(sparse):
        workloads.append(("gnp-60-sparse", sparse, node_connectivity(sparse) - 1, None))
    return workloads


@pytest.mark.benchmark(group="bipolar")
def test_theorem20_unidirectional_4_t(benchmark, experiment_log):
    """E06: unidirectional bipolar routing, worst surviving diameter <= 4."""

    def run():
        runner = ExperimentRunner(exhaustive_limit=600, seed=0)
        for name, graph, t, roots in _bipolar_workloads():
            runner.run(
                "E06/Theorem20",
                graph,
                lambda g, t=t, r=roots: unidirectional_bipolar_routing(g, t=t, roots=r),
                max_faults=t,
                diameter_bound=4,
            )
        return runner

    runner = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(runner.rows(), caption="E06 / Theorem 20: unidirectional bipolar routing"))
    for record in runner.records:
        experiment_log(
            "E06/Theorem20",
            "<= 4",
            record.measured_worst,
            record.graph_name,
            "exhaustive" if record.exhaustive else "adversarial battery",
        )
        assert record.holds, record.as_row()


@pytest.mark.benchmark(group="bipolar")
def test_theorem23_bidirectional_5_t(benchmark, experiment_log):
    """E07: bidirectional bipolar routing, worst surviving diameter <= 5."""

    def run():
        runner = ExperimentRunner(exhaustive_limit=600, seed=0)
        for name, graph, t, roots in _bipolar_workloads():
            runner.run(
                "E07/Theorem23",
                graph,
                lambda g, t=t, r=roots: bidirectional_bipolar_routing(g, t=t, roots=r),
                max_faults=t,
                diameter_bound=5,
            )
        return runner

    runner = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(runner.rows(), caption="E07 / Theorem 23: bidirectional bipolar routing"))
    for record in runner.records:
        experiment_log(
            "E07/Theorem23",
            "<= 5",
            record.measured_worst,
            record.graph_name,
            "exhaustive" if record.exhaustive else "adversarial battery",
        )
        assert record.holds, record.as_row()


@pytest.mark.benchmark(group="bipolar")
def test_bipolar_construction_cost(benchmark):
    """Construction-cost microbenchmark for the unidirectional bipolar routing."""
    graph, r1, r2 = synthetic.two_trees_graph(t=2)
    result = benchmark(lambda: unidirectional_bipolar_routing(graph, t=2, roots=(r1, r2)))
    assert result.scheme == "bipolar-uni"

"""Experiments E01 / E02 — the kernel routing (Theorems 3 and 4).

* **Theorem 3** (Dolev et al.): the kernel routing on a ``(t+1)``-connected
  graph is ``(2t, t)``-tolerant (quoted as ``max(2t, 4)`` for small ``t``).
* **Theorem 4** (this paper): the same routing is ``(4, floor(t/2))``-tolerant.

The bench sweeps cycles (``t = 1``), the synthetic kernel-test graphs
(``t = 2, 3``) and a circulant (``t = 3``), searches fault sets exhaustively
where feasible and with the combined adversarial battery otherwise, and checks
the measured worst surviving diameter against both bounds.
"""

import pytest

from repro.analysis import ExperimentRunner, format_table
from repro.core import kernel_routing
from repro.graphs import generators, synthetic


def _kernel_workloads():
    return [
        ("cycle-12", generators.cycle_graph(12), 1),
        ("cycle-20", generators.cycle_graph(20), 1),
        ("kernel-test-t2", synthetic.kernel_test_graph(t=2), 2),
        ("kernel-test-t3", synthetic.kernel_test_graph(t=3), 3),
        ("circulant-14(1,2)", generators.circulant_graph(14, [1, 2]), 3),
    ]


@pytest.mark.benchmark(group="kernel")
def test_theorem3_kernel_2t_t(benchmark, experiment_log):
    """E01: worst surviving diameter <= max(2t, 4) for |F| <= t."""

    def run():
        runner = ExperimentRunner(exhaustive_limit=3000, seed=0)
        for name, graph, t in _kernel_workloads():
            runner.run(
                "E01/Theorem3",
                graph,
                lambda g, t=t: kernel_routing(g, t=t),
                max_faults=t,
                diameter_bound=max(2 * t, 4),
            )
        return runner

    runner = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(runner.rows(), caption="E01 / Theorem 3: kernel routing, |F| <= t"))
    for record in runner.records:
        experiment_log(
            "E01/Theorem3",
            f"<= {record.paper_bound}",
            record.measured_worst,
            record.graph_name,
            "exhaustive" if record.exhaustive else "adversarial battery",
        )
        assert record.holds, record.as_row()


@pytest.mark.benchmark(group="kernel")
def test_theorem4_kernel_4_halft(benchmark, experiment_log):
    """E02: worst surviving diameter <= 4 for |F| <= floor(t/2)."""

    def run():
        runner = ExperimentRunner(exhaustive_limit=3000, seed=0)
        for name, graph, t in _kernel_workloads():
            runner.run(
                "E02/Theorem4",
                graph,
                lambda g, t=t: kernel_routing(g, t=t),
                max_faults=t // 2,
                diameter_bound=4,
            )
        return runner

    runner = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(runner.rows(), caption="E02 / Theorem 4: kernel routing, |F| <= floor(t/2)"))
    for record in runner.records:
        experiment_log(
            "E02/Theorem4",
            "<= 4",
            record.measured_worst,
            record.graph_name,
            "exhaustive" if record.exhaustive else "adversarial battery",
        )
        assert record.holds, record.as_row()


@pytest.mark.benchmark(group="kernel")
def test_kernel_construction_cost(benchmark):
    """Construction-cost microbenchmark: building the kernel routing itself."""
    graph = synthetic.kernel_test_graph(t=2)
    result = benchmark(lambda: kernel_routing(graph, t=2))
    assert result.scheme == "kernel"

"""Throughput benchmark: naive vs indexed vs parallel fault-campaign engines.

For each graph family the same fault battery is evaluated three ways:

* **naive** — the per-fault-set path that re-walks every route
  (:func:`repro.core.surviving.surviving_diameter` without an index);
* **indexed** — :class:`repro.faults.engine.CampaignEngine` with one worker,
  i.e. the :class:`~repro.core.route_index.RouteIndex` subtraction path;
* **parallel** — the same engine sharded over a process pool.

All three must produce identical outcomes (asserted); the table reports the
wall-clock ratio.  The acceptance target for the engine is a >= 3x speedup
of the indexed path over the naive path on the 200-node battery, which this
script checks and records in its output.

Run directly (no pytest needed)::

    python benchmarks/bench_campaign_engine.py          # full suite
    python benchmarks/bench_campaign_engine.py --quick  # CI smoke run
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List

if __package__ in (None, ""):  # allow running as a plain script from anywhere
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.analysis import format_table
from repro.core import (
    clique_augmented_kernel_routing,
    kernel_routing,
    surviving_diameter,
)
from repro.faults import CampaignEngine, random_fault_sets
from repro.graphs import generators

#: The acceptance threshold for the indexed engine on the 200-node battery.
TARGET_SPEEDUP = 3.0


def _workloads(quick: bool):
    """Yield ``(name, graph, construct, fault_size, samples, is_target)``."""
    if quick:
        yield ("hypercube-16", generators.hypercube_graph(4), kernel_routing, 2, 8, False)
        yield (
            "random-regular-20",
            generators.random_regular_graph(4, 20, seed=7),
            kernel_routing,
            2,
            8,
            False,
        )
        yield (
            "clique-kernel-16",
            generators.cycle_graph(16),
            clique_augmented_kernel_routing,
            1,
            8,
            False,
        )
        return
    yield ("hypercube-64", generators.hypercube_graph(6), kernel_routing, 3, 30, False)
    yield (
        "random-regular-100",
        generators.random_regular_graph(4, 100, seed=7),
        kernel_routing,
        3,
        30,
        False,
    )
    yield (
        "clique-kernel-60",
        generators.cycle_graph(60),
        clique_augmented_kernel_routing,
        1,
        30,
        False,
    )
    yield (
        "circulant-200",
        generators.circulant_graph(200, [1, 2]),
        kernel_routing,
        3,
        40,
        True,
    )


def run(quick: bool, workers: int) -> int:
    rows: List[dict] = []
    target_speedups: List[float] = []
    for name, graph, construct, fault_size, samples, is_target in _workloads(quick):
        result = construct(graph)
        battery = list(
            random_fault_sets(graph.nodes(), fault_size, samples, seed=13)
        )

        start = time.perf_counter()
        naive = [
            surviving_diameter(graph, result.routing, fault_set)
            for fault_set in battery
        ]
        naive_seconds = time.perf_counter() - start

        engine = CampaignEngine(graph, result.routing, workers=1)
        start = time.perf_counter()
        indexed = [diam for _, diam in engine.evaluate(battery)]
        indexed_seconds = time.perf_counter() - start

        pool_engine = CampaignEngine(graph, result.routing, workers=workers)
        start = time.perf_counter()
        parallel = [diam for _, diam in pool_engine.evaluate(battery)]
        parallel_seconds = time.perf_counter() - start

        assert naive == indexed == parallel, f"engine outcomes diverged on {name}"
        speedup = naive_seconds / indexed_seconds if indexed_seconds else float("inf")
        if is_target:
            target_speedups.append(speedup)
        rows.append(
            {
                "family": name,
                "n": graph.number_of_nodes(),
                "faults": fault_size,
                "battery": len(battery),
                "naive_s": round(naive_seconds, 3),
                "indexed_s": round(indexed_seconds, 3),
                f"parallel_s(w={workers})": round(parallel_seconds, 3),
                "indexed_speedup": f"{speedup:.1f}x",
            }
        )

    print(
        format_table(
            rows,
            caption="Campaign engine throughput: naive vs indexed vs parallel",
        )
    )
    if quick:
        print("\nquick mode: equivalence checked, speedup target not enforced")
        return 0
    worst = min(target_speedups)
    status = "PASS" if worst >= TARGET_SPEEDUP else "FAIL"
    print(
        f"\n200-node battery indexed speedup: {worst:.1f}x "
        f"(target >= {TARGET_SPEEDUP:.0f}x) -> {status}"
    )
    return 0 if worst >= TARGET_SPEEDUP else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graphs only (CI smoke run; no speedup target)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="worker processes for the parallel run",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.workers)


if __name__ == "__main__":
    sys.exit(main())

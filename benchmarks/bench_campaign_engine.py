"""Throughput benchmark: naive vs set-kernel vs bitset vs numpy engines.

For each graph family the same fault battery is evaluated five ways:

* **naive** — the per-fault-set path that re-walks every route
  (:func:`repro.core.surviving.surviving_diameter` without an index);
* **sets** — the PR-1 :class:`~repro.core.route_index.RouteIndex` path:
  incremental subtraction into per-node successor *sets* plus a level-set
  BFS (``kernel="sets"``);
* **bitset** — the big-int kernel (PR-2): one adjacency row per node, fault
  subtraction and BFS level advances as machine-word ``&``/``|`` operations;
* **numpy** — the packed-uint64 batched kernel
  (:mod:`repro.core.np_kernel`): the whole battery advances one BFS level
  per handful of vectorised calls through the
  :meth:`RouteIndex.surviving_diameters` batch API (column omitted when
  numpy is not installed);
* **parallel** — the engine sharding the battery over a process pool, with
  the pre-built index shipped to the workers.

All paths must produce identical outcomes (asserted).  Three further
measurements ride along:

* **greedy adversary end-to-end** — the delta-aware cursor path
  (:meth:`RouteIndex.cursor` / ``with_added``) against a faithful replica of
  the PR-1 greedy loop that re-evaluates every candidate from scratch
  through the set kernel;
* **worker serialization** — pickling the pre-built index (what the engine
  now ships to its pool) versus pickling the raw routing and rebuilding the
  index per worker (what PR 1 did);
* **2000-node hub battery** (full mode, numpy installed) — a directly-built
  hub-and-spoke routing far above what the paper constructions reach,
  checking the numpy backend stays correct and fast at scale.

Results are persisted as machine-readable JSON (``BENCH_kernel.json`` at the
repo root by default) so the perf trajectory is tracked across PRs.

Acceptance targets (enforced in full mode): the bitset kernel must be
>= 3x the set kernel on the 200-node battery, the cursor-driven greedy
adversary >= 5x end-to-end, and the numpy backend >= 3x the bitset kernel
on the dense 200-node battery (best-of-3 timings on both sides — the dense
instance is where batching pays; ratios on sparse batteries are smaller).
Quick mode (CI smoke) skips the ratio targets but still fails when the
bitset path is slower than the set path, or the numpy path slower than the
bitset path, on the smoke instance.

Run directly (no pytest needed)::

    python benchmarks/bench_campaign_engine.py          # full suite
    python benchmarks/bench_campaign_engine.py --quick  # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import random
import sys
import time
from typing import List

if __package__ in (None, ""):  # allow running as a plain script from anywhere
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.analysis import format_table
from repro.core import (
    RouteIndex,
    clique_augmented_kernel_routing,
    kernel_routing,
    surviving_diameter,
)
from repro.core.np_kernel import numpy_available
from repro.core.routing import Routing
from repro.faults import CampaignEngine, greedy_adversarial_fault_set, random_fault_sets
from repro.faults.adversary import greedy_fault_set_from_index
from repro.graphs import generators
from repro.graphs.graph import Graph

#: Acceptance thresholds on the 200-node target workloads.
TARGET_BITSET_SPEEDUP = 3.0   # bitset kernel vs PR-1 set kernel, same battery
TARGET_GREEDY_SPEEDUP = 5.0   # cursor greedy vs from-scratch set-kernel greedy
TARGET_NUMPY_SPEEDUP = 3.0    # numpy batch vs bitset on the *dense* battery
TARGET_BATCHED_GREEDY_SPEEDUP = 2.0  # batched vs sequential greedy (numpy, dense)

_DEFAULT_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_kernel.json"
)


def _workloads(quick: bool):
    """Yield ``(name, graph, construct, fault_size, samples, is_target,
    is_np_target)``.

    ``is_target`` marks the bitset-vs-sets gate instance, ``is_np_target``
    the numpy-vs-bitset gate instance: the *dense* circulant (offsets
    1,2,3,5), where batched vectorised level advances amortise best.  In
    quick mode one smoke instance carries both gates.
    """
    if quick:
        yield ("hypercube-16", generators.hypercube_graph(4), kernel_routing, 2, 8, False, False)
        yield (
            "clique-kernel-16",
            generators.cycle_graph(16),
            clique_augmented_kernel_routing,
            1,
            8,
            False,
            False,
        )
        # The smoke gate instance: large enough for stable timings.
        yield (
            "circulant-60",
            generators.circulant_graph(60, [1, 2]),
            kernel_routing,
            2,
            12,
            True,
            True,
        )
        return
    yield ("hypercube-64", generators.hypercube_graph(6), kernel_routing, 3, 30, False, False)
    yield (
        "random-regular-100",
        generators.random_regular_graph(4, 100, seed=7),
        kernel_routing,
        3,
        30,
        False,
        False,
    )
    yield (
        "clique-kernel-60",
        generators.cycle_graph(60),
        clique_augmented_kernel_routing,
        1,
        30,
        False,
        False,
    )
    yield (
        "circulant-200",
        generators.circulant_graph(200, [1, 2]),
        kernel_routing,
        3,
        40,
        True,
        False,
    )
    yield (
        "circulant-200-dense",
        generators.circulant_graph(200, [1, 2, 3, 5]),
        kernel_routing,
        3,
        40,
        False,
        True,
    )


def _best_of(fn, repeats: int = 3):
    """Best-of-``repeats`` wall time of ``fn()`` (noise-robust gate timing)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _hub_routing(n: int = 2000, hub_count: int = 5):
    """A directly-built hub-and-spoke workload far above paper-construction
    sizes.

    ``hub_count`` hub nodes form a clique; every other node attaches to one
    hub.  The (partial) routing carries spoke<->hub and hub<->hub routes
    only — about ``2n`` arcs, surviving diameter 3 — so index construction
    stays cheap at ``n=2000`` while the evaluation tensors are full-size.
    """
    graph = Graph(name=f"hub-{n}")
    for node in range(n):
        graph.add_node(node)
    for a in range(hub_count):
        for b in range(a + 1, hub_count):
            graph.add_edge(a, b)
    for node in range(hub_count, n):
        graph.add_edge(node, node % hub_count)
    routing = Routing(graph, bidirectional=False)
    for a in range(hub_count):
        for b in range(hub_count):
            if a != b:
                routing.set_route(a, b, [a, b])
    for node in range(hub_count, n):
        hub = node % hub_count
        routing.set_route(node, hub, [node, hub])
        routing.set_route(hub, node, [hub, node])
    return graph, routing


def _bench_hub_battery(samples: int = 20, fault_size: int = 3):
    """Time the 2000-node hub battery on both backends; assert equal values."""
    graph, routing = _hub_routing()
    battery = list(
        random_fault_sets(range(5, graph.number_of_nodes()), fault_size, samples, seed=23)
    )
    bitset_index = RouteIndex(graph, routing, backend="bitset")
    numpy_index = RouteIndex(graph, routing, backend="numpy")
    bitset_index.surviving_diameters(battery[:1])  # warm both kernels
    numpy_index.surviving_diameters(battery[:1])
    bitset_s, bitset_values = _best_of(
        lambda: bitset_index.surviving_diameters(battery)
    )
    numpy_s, numpy_values = _best_of(
        lambda: numpy_index.surviving_diameters(battery)
    )
    assert bitset_values == numpy_values, "hub-2000 backends diverged"
    return {
        "n": graph.number_of_nodes(),
        "arcs": 2 * (graph.number_of_nodes() - 5) + 20,
        "fault_size": fault_size,
        "battery": len(battery),
        "bitset_s": round(bitset_s, 4),
        "numpy_s": round(numpy_s, 4),
        "numpy_vs_bitset": round(bitset_s / numpy_s, 2) if numpy_s else None,
    }


def _greedy_set_kernel_baseline(graph, routing, size, candidate_limit, seed, index):
    """Replica of the PR-1 greedy loop: per-candidate set-kernel re-evaluation.

    Kept here (not in the library) purely as the end-to-end baseline for the
    cursor path: same candidate schedule, but every trial fault set is
    evaluated from scratch through ``kernel="sets"`` with PR 1's
    prefer-finite selection rule.
    """
    rng = random.Random(seed)
    faults = set()
    for _ in range(size):
        remaining = [node for node in graph.nodes() if node not in faults]
        if not remaining:
            break
        if len(remaining) > candidate_limit:
            candidates = rng.sample(remaining, candidate_limit)
        else:
            candidates = remaining
        best_node = None
        best_key = -1.0
        for node in candidates:
            diam = index.surviving_diameter(faults | {node}, kernel="sets")
            key = -0.5 if diam == float("inf") else diam
            if key > best_key:
                best_key, best_node = key, node
        if best_node is None:
            break
        faults.add(best_node)
    return faults


def _bench_greedy(graph, routing, index, size, candidate_limit, seed):
    legacy_seconds, _ = _best_of(
        lambda: _greedy_set_kernel_baseline(
            graph, routing, size, candidate_limit, seed, index
        ),
        repeats=2,
    )
    cursor_seconds, _ = _best_of(
        lambda: greedy_adversarial_fault_set(
            graph, routing, size, candidate_limit=candidate_limit, seed=seed,
            index=index,
        )
    )
    return legacy_seconds, cursor_seconds


def _bench_batched_greedy(graph, routing, size, candidate_limit, seed, backend):
    """Batched vs sequential greedy on one backend; asserts identical picks.

    Both sides run the library's own greedy (:func:`greedy_fault_set_from_
    index`) — the only difference is ``batched``: the sequential path
    evaluates every candidate one ``with_added``/``diameter`` at a time,
    the batched path ships cap-pruned candidate batches through the
    backend's batch kernel with sibling-bound memoisation.  Best-of-3 on
    both sides; each run builds fresh cursors, so no memoisation leaks
    across timings.
    """
    index = RouteIndex(graph, routing, backend=backend)
    index.surviving_diameters([frozenset()])  # build + warm the kernel
    sequential_s, sequential_pick = _best_of(
        lambda: greedy_fault_set_from_index(
            index, size, candidate_limit=candidate_limit, seed=seed, batched=False
        )
    )
    batched_s, batched_pick = _best_of(
        lambda: greedy_fault_set_from_index(
            index, size, candidate_limit=candidate_limit, seed=seed, batched=True
        )
    )
    assert batched_pick.nodes() == sequential_pick.nodes(), (
        f"batched greedy diverged from sequential on backend {backend}"
    )
    return {
        "size": size,
        "candidate_limit": candidate_limit,
        "backend": index.eval_backend,
        "sequential_s": round(sequential_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(sequential_s / batched_s, 2) if batched_s else None,
    }


def _bench_serialization(graph, routing, index):
    """Time the old per-worker payload (raw routing + rebuild) vs the new one."""
    start = time.perf_counter()
    raw_payload = pickle.dumps((graph, routing))
    raw_graph, raw_routing = pickle.loads(raw_payload)
    RouteIndex(raw_graph, raw_routing)  # what each PR-1 worker had to do
    raw_seconds = time.perf_counter() - start

    start = time.perf_counter()
    index_payload = pickle.dumps(index)
    pickle.loads(index_payload)  # the shipped pre-built index, ready to use
    index_seconds = time.perf_counter() - start
    return {
        "raw_payload_bytes": len(raw_payload),
        "raw_roundtrip_rebuild_s": round(raw_seconds, 4),
        "index_payload_bytes": len(index_payload),
        "index_roundtrip_s": round(index_seconds, 4),
        "speedup": round(raw_seconds / index_seconds, 2) if index_seconds else None,
    }


def run(quick: bool, workers: int, json_path: str) -> int:
    rows: List[dict] = []
    json_workloads: List[dict] = []
    target_speedups: List[float] = []
    numpy_speedups: List[float] = []
    have_numpy = numpy_available()
    smoke_gate_ok = True
    numpy_smoke_ok = True
    target_entry = None
    np_target_entry = None
    for name, graph, construct, fault_size, samples, is_target, is_np_target in _workloads(
        quick
    ):
        result = construct(graph)
        battery = list(
            random_fault_sets(graph.nodes(), fault_size, samples, seed=13)
        )

        start = time.perf_counter()
        naive = [
            surviving_diameter(graph, result.routing, fault_set)
            for fault_set in battery
        ]
        naive_seconds = time.perf_counter() - start

        index = RouteIndex(graph, result.routing, backend="bitset")
        # Warm the lazy set-kernel structures before the timer so both
        # kernels are measured evaluation-only (the bitset structures are
        # built in the constructor above, also untimed).
        index.surviving_diameter(battery[0], kernel="sets")
        start = time.perf_counter()
        set_kernel = [
            index.surviving_diameter(fault_set, kernel="sets")
            for fault_set in battery
        ]
        set_seconds = time.perf_counter() - start

        engine = CampaignEngine(graph, result.routing, workers=1, index=index)
        start = time.perf_counter()
        bitset = [diam for _, diam in engine.evaluate(battery)]
        bitset_seconds = time.perf_counter() - start

        numpy_seconds = None
        numpy_ratio = None
        if have_numpy:
            np_index = RouteIndex(graph, result.routing, backend="numpy")
            np_index.surviving_diameters(battery[:1])  # build + warm the kernel
            if is_np_target:
                # Gate timing: best-of-3 on both sides so the ratio reflects
                # kernels, not scheduler noise on a shared box.
                numpy_seconds, numpy_values = _best_of(
                    lambda: np_index.surviving_diameters(battery)
                )
                bitset_best, _ = _best_of(
                    lambda: index.surviving_diameters(battery)
                )
                numpy_ratio = (
                    bitset_best / numpy_seconds if numpy_seconds else float("inf")
                )
                numpy_speedups.append(numpy_ratio)
                if quick and numpy_seconds > bitset_best:
                    numpy_smoke_ok = False
            else:
                start = time.perf_counter()
                numpy_values = np_index.surviving_diameters(battery)
                numpy_seconds = time.perf_counter() - start
                numpy_ratio = (
                    bitset_seconds / numpy_seconds if numpy_seconds else float("inf")
                )
            assert numpy_values == bitset, f"numpy backend diverged on {name}"

        pool_engine = CampaignEngine(graph, result.routing, workers=workers)
        start = time.perf_counter()
        parallel = [diam for _, diam in pool_engine.evaluate(battery)]
        parallel_seconds = time.perf_counter() - start
        pool_engine.close()

        assert naive == set_kernel == bitset == parallel, (
            f"engine outcomes diverged on {name}"
        )
        vs_naive = naive_seconds / bitset_seconds if bitset_seconds else float("inf")
        vs_sets = set_seconds / bitset_seconds if bitset_seconds else float("inf")
        if is_target:
            target_speedups.append(vs_sets)
            if quick and bitset_seconds > set_seconds:
                smoke_gate_ok = False
            target_entry = (name, graph, result, index)
        if is_np_target:
            np_target_entry = (name, graph, result)
        rows.append(
            {
                "family": name,
                "n": graph.number_of_nodes(),
                "faults": fault_size,
                "battery": len(battery),
                "naive_s": round(naive_seconds, 3),
                "sets_s": round(set_seconds, 3),
                "bitset_s": round(bitset_seconds, 3),
                "numpy_s": (
                    round(numpy_seconds, 3) if numpy_seconds is not None else "-"
                ),
                f"parallel_s(w={workers})": round(parallel_seconds, 3),
                "vs_naive": f"{vs_naive:.1f}x",
                "vs_sets": f"{vs_sets:.1f}x",
                "np_vs_bitset": (
                    f"{numpy_ratio:.1f}x" if numpy_ratio is not None else "-"
                ),
            }
        )
        json_workloads.append(
            {
                "family": name,
                "n": graph.number_of_nodes(),
                "fault_size": fault_size,
                "battery": len(battery),
                "naive_s": round(naive_seconds, 4),
                "set_kernel_s": round(set_seconds, 4),
                "bitset_s": round(bitset_seconds, 4),
                "numpy_s": (
                    round(numpy_seconds, 4) if numpy_seconds is not None else None
                ),
                "numpy_vs_bitset": (
                    round(numpy_ratio, 2) if numpy_ratio is not None else None
                ),
                "parallel_s": round(parallel_seconds, 4),
                "parallel_workers": workers,
                "bitset_vs_naive": round(vs_naive, 2),
                "bitset_vs_sets": round(vs_sets, 2),
                "is_target": is_target,
                "is_np_target": is_np_target,
            }
        )

    print(
        format_table(
            rows,
            caption=(
                "Campaign engine throughput: naive vs set kernel vs bitset "
                "vs numpy vs parallel"
            ),
        )
    )

    # Greedy adversary end-to-end + serialization, on the target workload.
    greedy_entry = None
    serialization = None
    if target_entry is not None:
        name, graph, result, index = target_entry
        size, candidate_limit = (3, 20) if quick else (5, 40)
        legacy_s, cursor_s = _bench_greedy(
            graph, result.routing, index, size, candidate_limit, seed=7
        )
        greedy_speedup = legacy_s / cursor_s if cursor_s else float("inf")
        greedy_entry = {
            "family": name,
            "size": size,
            "candidate_limit": candidate_limit,
            "set_kernel_from_scratch_s": round(legacy_s, 4),
            "cursor_s": round(cursor_s, 4),
            "speedup": round(greedy_speedup, 2),
        }
        print(
            f"\ngreedy adversary on {name} (size={size}, candidates={candidate_limit}): "
            f"set-kernel from scratch {legacy_s:.3f}s, cursor {cursor_s:.3f}s "
            f"-> {greedy_speedup:.1f}x"
        )
        serialization = _bench_serialization(graph, result.routing, index)
        print(
            f"worker payload on {name}: raw routing {serialization['raw_payload_bytes']}B "
            f"+ rebuild {serialization['raw_roundtrip_rebuild_s']}s vs pre-built index "
            f"{serialization['index_payload_bytes']}B "
            f"roundtrip {serialization['index_roundtrip_s']}s "
            f"-> {serialization['speedup']}x"
        )

    # Batched vs sequential greedy adversary on the dense numpy-target
    # workload: the gate for the cap-pruned candidate-batch layer.  The
    # sequential side on the same backend is exactly the pre-batch library
    # behaviour, so the ratio isolates the batching (both sides must pick
    # the identical fault set — asserted inside the bench).  Without numpy
    # the bitset timing is still recorded (equality check included), but
    # the speedup gate only applies to the vectorised backend.
    batched_greedy_entry = None
    if np_target_entry is not None:
        name, graph, result = np_target_entry
        size, candidate_limit = (3, 20) if quick else (5, 40)
        batched_greedy_entry = _bench_batched_greedy(
            graph,
            result.routing,
            size,
            candidate_limit,
            seed=7,
            backend="numpy" if have_numpy else "bitset",
        )
        batched_greedy_entry["family"] = name
        print(
            f"batched greedy on {name} "
            f"({batched_greedy_entry['backend']} backend, size={size}, "
            f"candidates={candidate_limit}): sequential "
            f"{batched_greedy_entry['sequential_s']}s, batched "
            f"{batched_greedy_entry['batched_s']}s "
            f"-> {batched_greedy_entry['speedup']}x"
        )

    # 2000-node smoke battery: numpy-backend scale check (full mode only —
    # index construction at n=2000 is too slow for the CI smoke run).
    hub_entry = None
    if not quick and have_numpy:
        hub_entry = _bench_hub_battery()
        print(
            f"hub-2000 battery ({hub_entry['battery']} sets, "
            f"|F|={hub_entry['fault_size']}): bitset {hub_entry['bitset_s']}s, "
            f"numpy {hub_entry['numpy_s']}s -> {hub_entry['numpy_vs_bitset']}x"
        )

    payload = {
        "generated_by": "benchmarks/bench_campaign_engine.py",
        "mode": "quick" if quick else "full",
        "numpy_available": have_numpy,
        "workloads": json_workloads,
        "greedy_adversary": greedy_entry,
        "batched_greedy": batched_greedy_entry,
        "worker_serialization": serialization,
        "hub_2000": hub_entry,
        "targets": {
            "bitset_vs_sets_target": TARGET_BITSET_SPEEDUP,
            "greedy_cursor_target": TARGET_GREEDY_SPEEDUP,
            "numpy_vs_bitset_target": TARGET_NUMPY_SPEEDUP,
            "batched_greedy_target": TARGET_BATCHED_GREEDY_SPEEDUP,
        },
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {json_path}")

    if quick:
        if not smoke_gate_ok:
            print(
                "quick mode: FAIL — bitset kernel slower than the set kernel "
                "on the smoke instance"
            )
            return 1
        if not numpy_smoke_ok:
            print(
                "quick mode: FAIL — numpy backend slower than the bitset "
                "kernel on the smoke instance"
            )
            return 1
        numpy_note = (
            "numpy >= bitset on the smoke instance"
            if have_numpy
            else "numpy gate skipped (numpy not installed)"
        )
        print(
            "quick mode: equivalence checked, bitset >= set kernel on the smoke "
            f"instance, {numpy_note}; speedup targets not enforced"
        )
        return 0

    worst = min(target_speedups)
    battery_ok = worst >= TARGET_BITSET_SPEEDUP
    greedy_ok = greedy_entry is not None and greedy_entry["speedup"] >= TARGET_GREEDY_SPEEDUP
    print(
        f"\n200-node battery bitset-vs-sets speedup: {worst:.1f}x "
        f"(target >= {TARGET_BITSET_SPEEDUP:.0f}x) -> {'PASS' if battery_ok else 'FAIL'}"
    )
    print(
        f"greedy adversary cursor speedup: {greedy_entry['speedup']:.1f}x "
        f"(target >= {TARGET_GREEDY_SPEEDUP:.0f}x) -> {'PASS' if greedy_ok else 'FAIL'}"
    )
    if have_numpy:
        worst_np = min(numpy_speedups)
        numpy_ok = worst_np >= TARGET_NUMPY_SPEEDUP
        print(
            f"dense 200-node battery numpy-vs-bitset speedup: {worst_np:.1f}x "
            f"(target >= {TARGET_NUMPY_SPEEDUP:.0f}x) -> "
            f"{'PASS' if numpy_ok else 'FAIL'}"
        )
        batched_ok = (
            batched_greedy_entry is not None
            and batched_greedy_entry["speedup"] >= TARGET_BATCHED_GREEDY_SPEEDUP
        )
        print(
            f"dense 200-node batched-vs-sequential greedy speedup: "
            f"{batched_greedy_entry['speedup'] if batched_greedy_entry else 0:.1f}x "
            f"(target >= {TARGET_BATCHED_GREEDY_SPEEDUP:.0f}x) -> "
            f"{'PASS' if batched_ok else 'FAIL'}"
        )
    else:
        numpy_ok = True
        batched_ok = True
        print("numpy gate skipped (numpy not installed)")
        print(
            "batched greedy gate skipped (vectorised backend unavailable; "
            "pick equivalence still asserted)"
        )
    return 0 if (battery_ok and greedy_ok and numpy_ok and batched_ok) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graphs only (CI smoke run; bitset-vs-sets gate, no ratio targets)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="worker processes for the parallel run",
    )
    parser.add_argument(
        "--json",
        default=_DEFAULT_JSON,
        help="path of the machine-readable results file (default: repo-root "
        "BENCH_kernel.json)",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.workers, args.json)


if __name__ == "__main__":
    sys.exit(main())

"""Traffic-engine benchmark: the slotted event engine under a message storm.

Four claims are measured; the first two are enforced as CI gates:

1. **The slotted engine sustains >= 1e5 processed events/sec** on the
   200-node battery workload (uniform traffic over a circulant kernel
   routing, endpoint services on, every hop a scheduled event).  The rate
   counts *engine-processed events* — injects, endpoint-service steps,
   link-hop arrivals — against wall clock for the whole run.

2. **The event-driven engine beats the legacy per-hop loop >= 5x** on the
   same workload.  The baseline is a faithful port of the pre-refactor
   simulator (float-keyed binary-heap queue, ``lambda: None`` placeholder
   events, an ``events.run()`` after every hop, a fresh BFS plan per
   message); the engine runs the identical message list through the
   slotted queue with per-origin plan caching.  Both deliver the same
   messages over the same routing.

3. **Null-model parity** (correctness leg, hard failure): with unlimited
   link capacity and zero queueing the engine's receipts match the legacy
   loop's exactly — delivered flag, routes used, hop counts, failure
   reasons — and delivered latency obeys the serial cost model
   ``hops * hop_latency + 2 * segments * service.cost`` in exact ticks.
   (The legacy loop's *latency* numbers are not compared: its mid-send
   queue drains overlapped adjacent endpoint steps and mis-clocked
   failure receipts — the bugs this refactor fixed.)

4. **Determinism** (correctness leg, hard failure): two fresh
   ``run_traffic`` invocations of the battery produce identical result
   records, byte-for-byte as JSON.  (Cross-process / hash-seed identity
   is pinned by the ``traffic-smoke`` CI job and the test suite.)

Results are persisted to ``BENCH_traffic.json`` at the repo root.

Run directly (no pytest needed)::

    python benchmarks/bench_traffic.py          # full battery (200 nodes)
    python benchmarks/bench_traffic.py --quick  # CI smoke run
"""

from __future__ import annotations

import argparse
import dataclasses
import heapq
import itertools
import json
import os
import sys
import time

if __package__ in (None, ""):  # allow running as a plain script from anywhere
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import build_routing
from repro.core.routing import MultiRouting
from repro.core.surviving import surviving_route_graph
from repro.exceptions import DeliveryError, SimulationError
from repro.graphs import generators
from repro.graphs.traversal import bfs_tree
from repro.network import (
    LinkSpec,
    NetworkSimulator,
    NullService,
    Workload,
    XorEncryptionService,
    run_traffic,
)
from repro.network.messages import Message
from repro.network.node import NetworkNode

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_JSON = os.path.join(_REPO_ROOT, "BENCH_traffic.json")

#: The battery network: the same 200-node circulant the serving and
#: scenario benchmarks stress.
_BATTERY_N = 200


# ----------------------------------------------------------------------
# Legacy baseline: a faithful port of the pre-refactor per-hop loop
# ----------------------------------------------------------------------
@dataclasses.dataclass(order=True)
class _LegacyEvent:
    time: float
    sequence: int
    callback: object = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(compare=False, default=False)


class _LegacyEventQueue:
    """The old float-keyed binary-heap queue (O(n) length scans and all)."""

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay, callback):
        event = _LegacyEvent(self.now + delay, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def run(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.processed += 1
            event.callback()


class _LegacySimulator:
    """The pre-refactor simulator: placeholder events, run() per hop, no caches."""

    def __init__(self, graph, routing, service, hop_latency=0.1):
        self.graph = graph
        self.routing = routing
        self.service = service
        self.hop_latency = hop_latency
        self.events = _LegacyEventQueue()
        self.nodes = {node: NetworkNode(node) for node in graph.nodes()}
        self._surviving_cache = None

    def fail_nodes(self, node_ids):
        for node_id in node_ids:
            self.nodes[node_id].fail()
        self._surviving_cache = None

    def failed_nodes(self):
        return [node_id for node_id, node in self.nodes.items() if not node.alive]

    def surviving_graph(self):
        if self._surviving_cache is None:
            self._surviving_cache = surviving_route_graph(
                self.graph, self.routing, self.failed_nodes()
            )
        return self._surviving_cache

    def plan_route_sequence(self, origin, destination):
        surviving = self.surviving_graph()
        if not surviving.has_node(origin):
            raise DeliveryError(f"origin {origin!r} is failed or unknown")
        if not surviving.has_node(destination):
            raise DeliveryError(f"destination {destination!r} is failed or unknown")
        if origin == destination:
            return []
        parents = bfs_tree(surviving, origin)  # a fresh BFS per message
        if destination not in parents:
            raise DeliveryError(
                f"no sequence of surviving routes connects {origin!r} to {destination!r}"
            )
        chain = [destination]
        while chain[-1] != origin:
            chain.append(parents[chain[-1]])
        chain.reverse()
        return list(zip(chain, chain[1:]))

    def _segment_path(self, source, target):
        failed = set(self.failed_nodes())
        if isinstance(self.routing, MultiRouting):
            for path in self.routing.get_routes(source, target):
                if not any(node in failed for node in path):
                    return tuple(path)
            raise DeliveryError(f"all parallel routes {source!r}->{target!r} are faulty")
        path = self.routing.get_route(source, target)
        if path is None or any(node in failed for node in path):
            raise DeliveryError(f"route {source!r}->{target!r} is missing or faulty")
        return tuple(path)

    def send(self, origin, destination, payload):
        message = Message(origin=origin, final_destination=destination, payload=payload)
        message.trace.append(origin)
        try:
            plan = self.plan_route_sequence(origin, destination)
        except DeliveryError as exc:
            return (False, 0, 0, str(exc))
        hops = 0
        current_payload = payload
        try:
            for segment_source, segment_target in plan:
                path = self._segment_path(segment_source, segment_target)
                wire_payload = self.service.on_send(
                    current_payload, segment_source, segment_target
                )
                self.events.schedule(self.service.cost, lambda: None)
                message.payload = wire_payload
                message.attach_route(path)
                hops += self._run_segment(message)
                current_payload = self.service.on_receive(
                    wire_payload, segment_source, segment_target
                )
                self.events.schedule(self.service.cost, lambda: None)
            self.events.run()
        except (SimulationError, DeliveryError) as exc:
            return (False, message.route_counter, hops, str(exc))
        self.nodes[destination].deliver(message, current_payload)
        return (True, message.route_counter, hops, "")

    def _run_segment(self, message):
        hops = 0
        while True:
            current = self.nodes[message.current_node]
            next_node = current.forward(message)
            if next_node is None:
                return hops
            self.events.schedule(self.hop_latency, lambda: None)
            self.events.run()  # the per-hop drain the refactor removed
            if not self.nodes[next_node].alive:
                raise SimulationError(
                    f"message {message.message_id} reached failed node {next_node!r}"
                )
            message.advance()
            hops += 1


# ----------------------------------------------------------------------
# Batteries
# ----------------------------------------------------------------------
def _build_battery(n):
    graph = generators.circulant_graph(n, [1, 2])
    result = build_routing(graph, strategy="kernel")
    return graph, result


def _battery_workload(quick):
    return Workload(
        kind="uniform", messages=400 if quick else 2000, duration=500
    )


def _bench_engine_rate(quick):
    """Gate 1: >= 1e5 processed events/sec on the battery workload.

    The battery runs with link capacity on, so every hop is a scheduled
    event through a transmission queue — the heaviest per-event load the
    engine serves.
    """
    n = _BATTERY_N
    graph, result = _build_battery(n)
    workload = _battery_workload(quick)
    simulator = NetworkSimulator(
        graph,
        result.routing,
        service=XorEncryptionService(),
        hop_latency=0.1,
        link=LinkSpec(capacity=8),
    )
    delivered = 0

    def _count(receipt):
        nonlocal delivered
        delivered += receipt.delivered

    injected = 0
    for tick, origin, destination in workload.injections(graph.nodes(), 13):
        simulator.inject(origin, destination, None, delay=tick, on_complete=_count)
        injected += 1
    start = time.perf_counter()
    simulator.events.run()
    elapsed = time.perf_counter() - start
    events = simulator.events.processed
    rate = events / elapsed if elapsed else float("inf")
    within_gate = rate >= 1e5
    print(
        f"engine-rate gate [circulant n={n}, {workload.messages} messages, "
        f"capacity=8]: {events:,} events in {elapsed:.3f}s -> "
        f"{rate:,.0f} events/s "
        f"({delivered}/{injected} delivered; gate "
        f"{'ok' if within_gate else 'MISSED'})"
    )
    return {
        "n": n,
        "messages": workload.messages,
        "events": events,
        "engine_s": round(elapsed, 4),
        "events_per_sec": round(rate),
        "delivered": delivered,
        "injected": injected,
        "within_gate": within_gate,
    }


def _bench_vs_legacy(quick):
    """Gate 2: the event engine >= 5x the legacy per-hop loop.

    Always the full 2000-message battery: the engine's plan cache (one BFS
    per origin instead of one per message) needs a steady-state message
    volume to show, and the legacy loop still finishes in under a second.
    """
    n = _BATTERY_N
    graph, result = _build_battery(n)
    workload = _battery_workload(quick=False)
    nodes = graph.nodes()
    static_faults = [nodes[n // 4], nodes[(3 * n) // 4]]
    pairs = [
        (origin, destination)
        for _tick, origin, destination in workload.injections(nodes, 13)
    ]

    # Null service on both sides: the gate measures the delivery engine,
    # not the (identical) endpoint crypto work.
    legacy = _LegacySimulator(graph, result.routing, NullService(), hop_latency=0.1)
    legacy.fail_nodes(static_faults)
    start = time.perf_counter()
    legacy_outcomes = [legacy.send(o, d, None) for o, d in pairs]
    legacy_seconds = time.perf_counter() - start

    engine = NetworkSimulator(
        graph, result.routing, service=NullService(), hop_latency=0.1
    )
    engine.fail_nodes(static_faults)
    receipts = [None] * len(pairs)
    for index, (origin, destination) in enumerate(pairs):
        engine.inject(
            origin,
            destination,
            None,
            on_complete=lambda receipt, index=index: receipts.__setitem__(
                index, receipt
            ),
        )
    start = time.perf_counter()
    engine.events.run()
    engine_seconds = time.perf_counter() - start

    engine_outcomes = [
        (r.delivered, r.routes_used, r.hops, r.failure_reason) for r in receipts
    ]
    identical = engine_outcomes == legacy_outcomes
    speedup = legacy_seconds / engine_seconds if engine_seconds else float("inf")
    within_gate = speedup >= 5.0 and identical
    print(
        f"legacy gate [circulant n={n}, {len(pairs)} messages, "
        f"{len(static_faults)} static faults]: per-hop loop "
        f"{legacy_seconds:.3f}s vs event engine {engine_seconds:.3f}s -> "
        f"{speedup:.1f}x (outcomes "
        f"{'identical' if identical else 'DIVERGE'}, gate "
        f"{'ok' if within_gate else 'MISSED'})"
    )
    return {
        "n": n,
        "messages": len(pairs),
        "static_faults": len(static_faults),
        "legacy_s": round(legacy_seconds, 4),
        "engine_s": round(engine_seconds, 4),
        "speedup": round(speedup, 2),
        "outcomes_identical": identical,
        "within_gate": within_gate,
    }


def _bench_null_model_parity(quick):
    """Leg 3: null-link receipts match the legacy loop field-for-field."""
    n = 40 if quick else 60
    graph, result = _build_battery(n)
    nodes = graph.nodes()
    static_faults = [nodes[3], nodes[n // 2]]
    service = XorEncryptionService()
    workload = Workload(kind="uniform", messages=100 if quick else 300, duration=50)
    pairs = [
        (origin, destination)
        for _tick, origin, destination in workload.injections(nodes, 5)
    ]

    legacy = _LegacySimulator(graph, result.routing, service, hop_latency=0.1)
    legacy.fail_nodes(static_faults)
    legacy_outcomes = [legacy.send(o, d, None) for o, d in pairs]

    engine = NetworkSimulator(graph, result.routing, service=service, hop_latency=0.1)
    engine.fail_nodes(static_faults)
    engine_receipts = [engine.send(o, d, None) for o, d in pairs]

    mismatches = 0
    serial_violations = 0
    for (delivered, routes, hops, reason), receipt in zip(
        legacy_outcomes, engine_receipts
    ):
        if (receipt.delivered, receipt.routes_used, receipt.hops,
                receipt.failure_reason) != (delivered, routes, hops, reason):
            mismatches += 1
        if receipt.delivered and receipt.latency_ticks != (
            receipt.hops * engine.hop_ticks
            + 2 * receipt.routes_used * engine.service_ticks
        ):
            serial_violations += 1
    ok = mismatches == 0 and serial_violations == 0
    delivered_count = sum(1 for r in engine_receipts if r.delivered)
    print(
        f"null-model parity [circulant n={n}, {len(pairs)} messages]: "
        f"{mismatches} receipt mismatches, {serial_violations} serial-latency "
        f"violations ({delivered_count} delivered, "
        f"{len(pairs) - delivered_count} failed; {'ok' if ok else 'FAIL'})"
    )
    return {
        "n": n,
        "messages": len(pairs),
        "delivered": delivered_count,
        "receipt_mismatches": mismatches,
        "serial_latency_violations": serial_violations,
        "ok": ok,
    }


def _bench_determinism(quick):
    """Leg 4: two fresh battery runs emit byte-identical result records."""
    n = 64 if quick else _BATTERY_N
    workload = Workload(kind="hotspot", messages=200 if quick else 600,
                        duration=200, hotspots=3)
    records = []
    for _ in range(2):
        graph, result = _build_battery(n)
        outcome = run_traffic(
            graph,
            result.routing,
            workload,
            seed=99,
            hop_latency=0.1,
            fingerprint=result.fingerprint(),
        )
        records.append(json.dumps(outcome.record(), sort_keys=True))
    identical = records[0] == records[1]
    print(
        f"determinism [circulant n={n}, hotspot workload]: two fresh runs "
        f"{'byte-identical' if identical else 'DIVERGE'}"
    )
    return {"n": n, "runs": 2, "byte_identical": identical}


def run(quick, json_path):
    engine_rate = _bench_engine_rate(quick)
    legacy = _bench_vs_legacy(quick)
    parity = _bench_null_model_parity(quick)
    determinism = _bench_determinism(quick)

    document = {
        "generated_by": "benchmarks/bench_traffic.py",
        "mode": "quick" if quick else "full",
        "engine_rate": engine_rate,
        "vs_legacy": legacy,
        "null_model_parity": parity,
        "determinism": determinism,
    }
    with open(json_path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {json_path}")

    failures = []
    if not engine_rate["within_gate"]:
        failures.append(
            f"engine rate {engine_rate['events_per_sec']:,} events/s misses "
            f"the 1e5 gate"
        )
    if not legacy["outcomes_identical"]:
        failures.append("engine outcomes diverge from the legacy per-hop loop")
    if not legacy["within_gate"]:
        failures.append(f"engine speedup {legacy['speedup']:.1f}x misses the 5x gate")
    if not parity["ok"]:
        failures.append("null-model receipts diverge from the legacy loop")
    if not determinism["byte_identical"]:
        failures.append("repeated runs are not byte-identical")
    if failures:
        for failure in failures:
            print(f"FAIL — {failure}")
        return 1
    print(
        f"PASS — {engine_rate['events_per_sec']:,} events/s, "
        f"{legacy['speedup']:.1f}x over the legacy loop, null-model parity "
        f"and determinism verified"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small instances (CI smoke run)"
    )
    parser.add_argument(
        "--json",
        default=_DEFAULT_JSON,
        help="path of the machine-readable results file (default: repo-root "
        "BENCH_traffic.json)",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.json)


if __name__ == "__main__":
    sys.exit(main())

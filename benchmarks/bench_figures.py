"""Figures F1 / F2 / F3 — structural reproduction of the paper's three figures.

The paper's figures are schematic diagrams of the three main constructions:

* **Figure 1** — the circular routing: every outside node sends tree routings
  into every ``Gamma_i``; every ``Gamma_i`` node sends tree routings forward
  around the circle.
* **Figure 2** — the tri-circular routing: three circular components with
  forward routings inside each and cross routings to the next component.
* **Figure 3** — the unidirectional bipolar routing: tree routings towards
  ``M1`` and ``M2`` and from each concentrator node into its side's
  neighbourhood sets.

Since the figures carry structural (not numeric) information, the benches
reproduce them as *component inventories*: for a concrete graph they count,
for every component of the construction, how many routes it contributed, and
assert the counts match what the definitions demand (e.g. every outside node
really has ``t + 1`` routes into every ``Gamma_i``).  The printed tables are
the textual analogue of the figures.
"""

import math

import pytest

from repro.analysis import format_table
from repro.core import circular_routing, tricircular_routing, unidirectional_bipolar_routing
from repro.graphs import generators, synthetic


@pytest.mark.benchmark(group="figures")
def test_figure1_circular_structure(benchmark, experiment_log):
    """F1: component inventory of the circular routing."""
    graph, flowers = synthetic.flower_graph(t=2, k=5)

    result = benchmark.pedantic(
        lambda: circular_routing(graph, t=2, concentrator=flowers), rounds=1, iterations=1
    )
    routing = result.routing
    members = result.concentrator
    t = result.t
    k = result.details["k"]
    gammas = {m: graph.neighbors(m) for m in members}
    gamma_union = set().union(*gammas.values())

    rows = []
    # CIRC 1: every node outside Gamma has t+1 routes into every Gamma_i.
    outside = [x for x in graph.nodes() if x not in gamma_union]
    circ1_ok = all(
        sum(1 for y in gammas[m] if routing.has_route(x, y)) >= t + 1
        for x in outside
        for m in members[:k]
    )
    rows.append({"component": "CIRC 1", "sources": len(outside), "targets": f"all {k} Gamma_i", "ok": circ1_ok})
    # CIRC 2: every Gamma node routes forward to ceil(K/2)-1 sets.
    forward = math.ceil(k / 2) - 1
    circ2_ok = True
    for x in sorted(gamma_union, key=repr):
        reached_sets = sum(
            1
            for m in members[:k]
            if x not in gammas[m]
            and sum(1 for y in gammas[m] if routing.has_route(x, y)) >= t + 1
        )
        if reached_sets < forward:
            circ2_ok = False
    rows.append({"component": "CIRC 2", "sources": len(gamma_union), "targets": f"{forward} forward sets", "ok": circ2_ok})
    # CIRC 3: all edges have direct routes.
    circ3_ok = all(routing.get_route(u, v) == (u, v) for u, v in graph.edges())
    rows.append({"component": "CIRC 3", "sources": graph.number_of_edges(), "targets": "direct edges", "ok": circ3_ok})

    print()
    print(format_table(rows, caption="F1 / Figure 1: circular routing component inventory"))
    experiment_log("F1/Figure1", "all components present", all(r["ok"] for r in rows), graph.name)
    assert all(row["ok"] for row in rows)


@pytest.mark.benchmark(group="figures")
def test_figure2_tricircular_structure(benchmark, experiment_log):
    """F2: component inventory of the tri-circular routing."""
    graph, flowers = synthetic.flower_graph(t=1, k=15)

    result = benchmark.pedantic(
        lambda: tricircular_routing(graph, t=1, concentrator=flowers), rounds=1, iterations=1
    )
    routing = result.routing
    t = result.t
    components = result.details["components"]
    third = result.details["component_size"]
    gammas = {m: graph.neighbors(m) for comp in components for m in comp}
    gamma_union = set().union(*gammas.values())

    def routes_into(x, member):
        return sum(1 for y in gammas[member] if routing.has_route(x, y))

    rows = []
    outside = [x for x in graph.nodes() if x not in gamma_union]
    tcirc1_ok = all(
        routes_into(x, m) >= t + 1 for x in outside for comp in components for m in comp
    )
    rows.append({"component": "T-CIRC 1", "sources": len(outside), "targets": "all K sets", "ok": tcirc1_ok})

    offsets = result.details["t_circ2_offsets"]
    tcirc2_ok = True
    tcirc3_ok = True
    index_of = {}
    for j, comp in enumerate(components):
        for i, m in enumerate(comp):
            for x in gammas[m]:
                index_of[x] = (j, i)
    for x in sorted(gamma_union, key=repr):
        j, i = index_of[x]
        for offset in offsets:
            center = components[j][(i + offset) % third]
            if routes_into(x, center) < t + 1:
                tcirc2_ok = False
        for center in components[(j + 1) % 3]:
            if routes_into(x, center) < t + 1:
                tcirc3_ok = False
    rows.append({"component": "T-CIRC 2", "sources": len(gamma_union), "targets": f"offsets {offsets}", "ok": tcirc2_ok})
    rows.append({"component": "T-CIRC 3", "sources": len(gamma_union), "targets": "next component", "ok": tcirc3_ok})
    tcirc4_ok = all(routing.get_route(u, v) == (u, v) for u, v in graph.edges())
    rows.append({"component": "T-CIRC 4", "sources": graph.number_of_edges(), "targets": "direct edges", "ok": tcirc4_ok})

    print()
    print(format_table(rows, caption="F2 / Figure 2: tri-circular routing component inventory"))
    experiment_log("F2/Figure2", "all components present", all(r["ok"] for r in rows), graph.name)
    assert all(row["ok"] for row in rows)


@pytest.mark.benchmark(group="figures")
def test_figure3_bipolar_structure(benchmark, experiment_log):
    """F3: component inventory of the unidirectional bipolar routing."""
    graph, r1, r2 = synthetic.two_trees_graph(t=2)

    result = benchmark.pedantic(
        lambda: unidirectional_bipolar_routing(graph, t=2, roots=(r1, r2)),
        rounds=1,
        iterations=1,
    )
    routing = result.routing
    t = result.t
    m1, m2 = result.details["m1"], result.details["m2"]

    rows = []
    bpol1_ok = all(
        sum(1 for m in m1 if routing.has_route(x, m)) >= t + 1
        for x in graph.nodes()
        if x not in set(m1)
    )
    rows.append({"component": "B-POL 1", "description": "x -> M1 tree routings", "ok": bpol1_ok})
    bpol2_ok = all(
        sum(1 for m in m2 if routing.has_route(x, m)) >= t + 1
        for x in graph.nodes()
        if x not in set(m2)
    )
    rows.append({"component": "B-POL 2", "description": "x -> M2 tree routings", "ok": bpol2_ok})
    bpol34_ok = all(
        sum(1 for y in graph.neighbors(center) if routing.has_route(member, y)) >= t + 1
        for side in (m1, m2)
        for member in side
        for center in side
    )
    rows.append({"component": "B-POL 3/4", "description": "M -> Gamma tree routings", "ok": bpol34_ok})
    bpol5_ok = all(routing.has_route(b, a) for (a, b) in routing.pairs())
    rows.append({"component": "B-POL 5", "description": "reverse directions filled", "ok": bpol5_ok})
    bpol6_ok = all(routing.get_route(u, v) == (u, v) for u, v in graph.edges())
    rows.append({"component": "B-POL 6", "description": "direct edges", "ok": bpol6_ok})

    print()
    print(format_table(rows, caption="F3 / Figure 3: unidirectional bipolar routing component inventory"))
    experiment_log("F3/Figure3", "all components present", all(r["ok"] for r in rows), graph.name)
    assert all(row["ok"] for row in rows)

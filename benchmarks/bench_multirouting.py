"""Experiment E11 — multiroutings (Section 6, observations 1-3).

* ``t + 1`` parallel routes everywhere          -> surviving diameter 1;
* ``t + 1`` parallel routes inside the kernel   -> surviving diameter 3;
* at most two parallel routes (single tree)     -> small constant diameter
  (we check the bipolar-style bound of 4 and report the measured value).

The bench also reports the route-table sizes, the trade-off the paper's
miserly model is about.
"""

import pytest

from repro.analysis import ExperimentRunner, format_table
from repro.core import (
    full_multirouting,
    kernel_multirouting,
    single_tree_multirouting,
)
from repro.graphs import generators, synthetic


def _workloads():
    return [
        ("circulant-10(1,2)", generators.circulant_graph(10, [1, 2]), 3),
        ("circulant-12(1,2)", generators.circulant_graph(12, [1, 2]), 3),
        ("kernel-test-t2", synthetic.kernel_test_graph(t=2), 2),
        ("cycle-12", generators.cycle_graph(12), 1),
    ]


_SCHEMES = [
    ("multi-full", full_multirouting, 1),
    ("multi-kernel", kernel_multirouting, 3),
    ("multi-single-tree", single_tree_multirouting, 4),
]


@pytest.mark.benchmark(group="multirouting")
def test_section6_multiroutings(benchmark, experiment_log):
    """E11: surviving diameters 1 / 3 / <=4 for the three multirouting variants."""

    def run():
        runner = ExperimentRunner(exhaustive_limit=800, seed=0)
        table_sizes = {}
        for scheme_name, factory, bound in _SCHEMES:
            for name, graph, t in _workloads():
                record = runner.run(
                    f"E11/{scheme_name}",
                    graph,
                    lambda g, t=t, f=factory: f(g, t=t),
                    max_faults=t,
                    diameter_bound=bound,
                )
                result = factory(graph, t=t)
                table_sizes[(scheme_name, name)] = result.routing.route_count()
        return runner, table_sizes

    runner, table_sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = runner.rows()
    for row in rows:
        row["route_table"] = table_sizes.get((row["experiment"].split("/")[1], row["graph"]), "")
    print()
    print(format_table(rows, caption="E11 / Section 6: multiroutings"))
    for record in runner.records:
        experiment_log(
            record.experiment,
            f"<= {record.paper_bound}",
            record.measured_worst,
            record.graph_name,
            "exhaustive" if record.exhaustive else "adversarial battery",
        )
        assert record.holds, record.as_row()
    # The paper's observation (1): the full multirouting achieves diameter exactly 1.
    for record in runner.records:
        if record.experiment.endswith("multi-full"):
            assert record.measured_worst == 1


@pytest.mark.benchmark(group="multirouting")
def test_multirouting_table_size_tradeoff(benchmark, experiment_log):
    """E11b: the diameter-1 guarantee costs a quadratic route table."""
    graph = generators.circulant_graph(12, [1, 2])

    def run():
        return {
            "multi-full": full_multirouting(graph).routing.route_count(),
            "multi-kernel": kernel_multirouting(graph).routing.route_count(),
            "multi-single-tree": single_tree_multirouting(graph).routing.route_count(),
        }

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"scheme": scheme, "routes_stored": count} for scheme, count in sizes.items()]
    print()
    print(format_table(rows, caption="E11b: route-table sizes on circulant-12(1,2)"))
    experiment_log(
        "E11b/table-size",
        "full >> concentrator-based",
        f"{sizes['multi-full']} vs {sizes['multi-kernel']}",
        "circulant-12(1,2)",
    )
    assert sizes["multi-full"] > sizes["multi-kernel"]
    assert sizes["multi-full"] > sizes["multi-single-tree"]

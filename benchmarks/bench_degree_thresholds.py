"""Experiments E08 / E09 — degree thresholds (Lemma 15, Theorem 16, Corollary 17).

* **Lemma 15**: the greedy algorithm finds a neighbourhood set of at least
  ``ceil(n / (d^2 + 1))`` nodes.
* **Corollary 17**: max degree ``< 0.79 n^(1/3)`` guarantees the circular
  routing applies; ``< 0.46 n^(1/3)`` guarantees the tri-circular routing.

The bench tabulates, for a sweep of graph families, the paper's thresholds,
Lemma 15's guaranteed size, the size the greedy algorithm actually achieves,
and whether the construction's requirement is met — asserting the lemma's
inequality always and the corollary's implication whenever the degree bound
holds.
"""

import pytest

from repro.analysis import evaluate_degree_bounds, format_table
from repro.core import greedy_neighborhood_set, lemma15_lower_bound
from repro.graphs import generators, is_neighborhood_set, synthetic


def _degree_workloads():
    flower, _ = synthetic.flower_graph(t=1, k=15)
    return [
        ("cycle-64", generators.cycle_graph(64), 1),
        ("cycle-200", generators.cycle_graph(200), 1),
        ("grid-10x10", generators.grid_graph(10, 10), 1),
        ("torus-8x8", generators.torus_graph(8, 8), 3),
        ("hypercube-4", generators.hypercube_graph(4), 3),
        ("ccc-4", generators.cube_connected_cycles_graph(4), 2),
        ("butterfly-3", generators.butterfly_graph(3), 3),
        ("flower-t1-k15", flower, 1),
        ("random-regular-3-60", generators.random_regular_graph(3, 60, seed=4), 2),
    ]


@pytest.mark.benchmark(group="degree")
def test_lemma15_greedy_neighborhood_sets(benchmark, experiment_log):
    """E08: greedy neighbourhood sets meet the ceil(n/(d^2+1)) guarantee."""

    def run():
        rows = []
        for name, graph, _t in _degree_workloads():
            selected = greedy_neighborhood_set(graph)
            rows.append(
                {
                    "graph": name,
                    "n": graph.number_of_nodes(),
                    "max_deg": graph.max_degree(),
                    "lemma15_guarantee": lemma15_lower_bound(graph),
                    "greedy_found": len(selected),
                    "valid": "yes" if is_neighborhood_set(graph, selected) else "NO",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, caption="E08 / Lemma 15: greedy neighbourhood set sizes"))
    for row in rows:
        experiment_log(
            "E08/Lemma15",
            f">= {row['lemma15_guarantee']}",
            row["greedy_found"],
            row["graph"],
        )
        assert row["valid"] == "yes"
        assert row["greedy_found"] >= row["lemma15_guarantee"]


@pytest.mark.benchmark(group="degree")
def test_corollary17_degree_thresholds(benchmark, experiment_log):
    """E09: whenever the Corollary 17 counting closes, the required K is found."""

    def run():
        records = []
        for name, graph, t in _degree_workloads():
            record = evaluate_degree_bounds(graph, t=t)
            records.append((name, record))
        return records

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [record.as_row() for _name, record in records]
    print()
    print(format_table(rows, caption="E09 / Corollary 17: degree thresholds"))
    for name, record in records:
        experiment_log(
            "E09/Corollary17",
            f"circ d<{record.circular_threshold:.2f}",
            f"d={record.max_degree}, K={record.greedy_found}",
            name,
        )
        # The corollary's mechanism: Lemma 15's guaranteed size alone already
        # exceeds the construction's requirement whenever the counting closes.
        if record.lemma15_guarantee >= record.circular_required:
            assert record.circular_applicable
        if record.lemma15_guarantee >= record.tricircular_required:
            assert record.tricircular_applicable


@pytest.mark.benchmark(group="degree")
def test_theorem16_size_thresholds(benchmark, experiment_log):
    """E09b: above the Theorem 16 size thresholds the requirements always close."""
    import math

    from repro.analysis import minimum_size_for_circular, minimum_size_for_tricircular

    def run():
        rows = []
        for d in (2, 3, 4, 5):
            t = d - 1
            n_circ = minimum_size_for_circular(d, t)
            n_tri = minimum_size_for_tricircular(d, t)
            rows.append(
                {
                    "max_deg d": d,
                    "t": t,
                    "n_circular": n_circ,
                    "K_guaranteed@n_circ": math.ceil(n_circ / (d * d + 1)),
                    "K_needed_circ": t + 2,
                    "n_tricircular": n_tri,
                    "K_guaranteed@n_tri": math.ceil(n_tri / (d * d + 1)),
                    "K_needed_tri": 6 * t + 9,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, caption="E09b / Theorem 16: size thresholds close the counting"))
    for row in rows:
        experiment_log(
            "E09b/Theorem16",
            f"K >= {row['K_needed_circ']} (circ)",
            row["K_guaranteed@n_circ"],
            f"d={row['max_deg d']}",
        )
        assert row["K_guaranteed@n_circ"] >= row["K_needed_circ"]
        assert row["K_guaranteed@n_tri"] >= row["K_needed_tri"]

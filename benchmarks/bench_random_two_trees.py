"""Experiment E10 — the two-trees property in sparse random graphs (Lemma 24 / Theorem 25).

Lemma 24: for ``G(n, p)`` with ``p <= c n^eps / n`` and ``eps < 1/4``, a fixed
pair of vertices fails to witness the two-trees property with probability
``O(n^-delta)``.  Theorem 25: consequently almost every such graph admits the
bipolar routings.

The bench sweeps ``n`` in the sparse regime, reporting

* the fraction of samples in which the fixed pair ``(0, 1)`` is good,
* the fraction in which *some* pair witnesses the property (Theorem 25's
  event), and
* Lemma 24's analytic upper bound on the bad-pair probability,

and asserts (a) the measured fixed-pair failure rate does not exceed the
analytic bound by more than sampling noise allows, and (b) the some-pair
success rate is high in the regime, matching the "almost everywhere" claim.
"""

import pytest

from repro.analysis import format_table, sweep_two_trees


@pytest.mark.benchmark(group="random-graphs")
def test_lemma24_theorem25_two_trees_probability(benchmark, experiment_log):
    """E10: empirical two-trees probabilities versus Lemma 24's bound."""

    def run():
        return sweep_two_trees(
            sizes=[40, 60, 80, 120],
            c=1.0,
            eps=0.2,
            samples=12,
            seed=0,
            search_all_pairs=True,
        )

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [sample.as_row() for sample in samples]
    print()
    print(format_table(rows, caption="E10 / Lemma 24 + Theorem 25: two-trees property in G(n, p)"))
    for sample in samples:
        experiment_log(
            "E10/Theorem25",
            f"P(bad pair) <= {sample.bad_event_bound:.2f}",
            f"some-pair good: {sample.some_pair_good:.2f}",
            f"gnp-{sample.n}",
        )
        # (a) the fixed-pair failure rate is consistent with the analytic bound
        # (allowing generous sampling slack for 12 samples).
        measured_bad = 1.0 - sample.fixed_pair_good
        assert measured_bad <= min(1.0, sample.bad_event_bound + 0.35)
        # (b) Theorem 25's event ("some pair is good") holds for the large
        # majority of sampled sparse graphs.
        assert sample.some_pair_good >= 0.5
    # The trend Theorem 25 predicts: the some-pair probability does not
    # degrade as n grows within the regime.
    assert samples[-1].some_pair_good >= samples[0].some_pair_good - 0.3


@pytest.mark.benchmark(group="random-graphs")
def test_dense_regime_contrast(benchmark, experiment_log):
    """E10b: outside the sparse regime the property disappears (contrast case)."""
    from repro.analysis import sample_two_trees_probability

    def run():
        return sample_two_trees_probability(40, 0.25, samples=8, seed=3)

    sample = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [sample.as_row()],
            caption="E10b: dense contrast (p far above the Lemma 24 regime)",
        )
    )
    experiment_log(
        "E10b/contrast",
        "property should vanish",
        f"some-pair good: {sample.some_pair_good:.2f}",
        "gnp-40-dense",
    )
    assert sample.some_pair_good <= 0.25

"""Grid-sweep benchmark: shared worker payloads + resumable result stores.

Four claims are measured and enforced:

1. **Shared slim-index payloads keep parallel suites correct (and cheap).**
   The same grid suite is run with ``share_index=True`` (the parent
   broadcasts each scenario's pre-built slim route index through the pool
   initializer) and with ``share_index=False`` (every worker rebuilds every
   scenario from its canonical string).  The rows must be byte-identical —
   the payload is an optimisation, never a semantic change — and both wall
   times are recorded so regressions in either path show up in the JSON.

2. **Supervised dispatch is free on the clean path.**  The same suite runs
   through the :class:`~repro.runtime.Supervisor` (timeouts, retry budgets,
   dead-worker detection armed) and through the bare ``pool.imap`` baseline
   (``supervised=False``).  Rows must be identical and the supervised best
   time must stay within 5% of the baseline (or a small absolute delta on
   quick runs, where timer noise exceeds 5%).

3. **Resumed grid campaigns recompute nothing that was stored.**  A grid
   sweep is persisted to a JSONL result store, the store is truncated
   mid-row (simulating a kill), and the sweep is resumed.  The gate checks
   that (a) the resumed store is byte-identical to the uninterrupted one,
   (b) the resumed run evaluated strictly fewer shard tasks than the full
   run, and (c) the rendered scaling report matches exactly.

4. **Split strategy-comparison runs merge losslessly.**  One
   ``kernel|circular`` grid is swept whole, then again split per strategy
   into two separate stores which are merged with
   :func:`~repro.results.store.merge_result_stores`.  Battery seeds hash
   scenario identity rather than suite position, so the merged store must
   hold exactly the combined run's records and the rendered comparison
   table (strategy × t column groups, mean ± worst cells) must match the
   combined run's byte for byte.

Results are persisted to ``BENCH_grid.json`` at the repo root.

Run directly (no pytest needed)::

    python benchmarks/bench_grid.py          # full suite
    python benchmarks/bench_grid.py --quick  # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

if __package__ in (None, ""):  # allow running as a plain script from anywhere
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.analysis import format_table, render_scaling_report
from repro.results import ResultStore, merge_result_stores, result_frame
from repro.scenarios import (
    expand_grids,
    parse_grid,
    run_scenario_suite,
    suite_manifest,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_JSON = os.path.join(_REPO_ROOT, "BENCH_grid.json")


def _grid_workload(quick: bool):
    """Return ``(grid_spec, samples, workers)`` for the payload gate.

    Few, comparatively large scenarios: exactly the shape the shared
    payload targets (per-worker rebuild cost dominates small batteries).
    """
    if quick:
        return ("circulant:n=40..48,offsets=1+2/kernel/sizes:2", 8, 2)
    return ("circulant:n=96..112,offsets=1+2/kernel/sizes:2,4", 24, 4)


def _bench_shared_payload(quick: bool) -> dict:
    grid_spec, samples, workers = _grid_workload(quick)
    scenarios = expand_grids([grid_spec])

    start = time.perf_counter()
    shared_rows = run_scenario_suite(
        scenarios, samples=samples, seed=11, workers=workers, share_index=True
    )
    shared_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rebuild_rows = run_scenario_suite(
        scenarios, samples=samples, seed=11, workers=workers, share_index=False
    )
    rebuild_seconds = time.perf_counter() - start

    identical = [row.as_row() for row in shared_rows] == [
        row.as_row() for row in rebuild_rows
    ]
    speedup = rebuild_seconds / shared_seconds if shared_seconds else float("inf")
    print(
        format_table(
            [row.as_row() for row in shared_rows],
            caption=(
                f"Grid suite [{grid_spec}] ({len(scenarios)} scenarios, "
                f"workers={workers}, shared payload)"
            ),
        )
    )
    print(
        f"\nshared payload {shared_seconds:.3f}s vs per-worker rebuild "
        f"{rebuild_seconds:.3f}s -> {speedup:.2f}x "
        f"(rows {'identical' if identical else 'DIVERGE'})"
    )
    return {
        "grid": grid_spec,
        "scenarios": len(scenarios),
        "samples": samples,
        "workers": workers,
        "shared_s": round(shared_seconds, 4),
        "rebuild_s": round(rebuild_seconds, 4),
        "speedup": round(speedup, 2),
        "rows_identical": identical,
    }


def _overhead_workload(quick: bool):
    """Return ``(grid_spec, samples, workers, repeats)`` for the gate."""
    if quick:
        return ("circulant:n=40..44,offsets=1+2/kernel/sizes:2", 8, 2, 3)
    return ("circulant:n=96..104,offsets=1+2/kernel/sizes:2,4", 24, 4, 3)


def _bench_supervisor_overhead(quick: bool) -> dict:
    """Clean-path cost of supervised dispatch vs the bare ``pool.imap``.

    The supervisor's sliding window, deadlines and liveness polling must be
    invisible when nothing fails: the gate takes the best of ``repeats``
    runs each way (damping scheduler noise), requires identical rows, and
    requires the supervised best within 5% of the unsupervised best — or
    within a small absolute delta, since quick-mode runs are short enough
    for timer noise to exceed 5%.
    """
    grid_spec, samples, workers, repeats = _overhead_workload(quick)
    scenarios = expand_grids([grid_spec])

    def timed(supervised: bool):
        best = float("inf")
        rows = None
        for _ in range(repeats):
            start = time.perf_counter()
            rows = run_scenario_suite(
                scenarios,
                samples=samples,
                seed=11,
                workers=workers,
                supervised=supervised,
            )
            best = min(best, time.perf_counter() - start)
        return best, rows

    supervised_s, supervised_rows = timed(True)
    plain_s, plain_rows = timed(False)
    identical = [row.as_row() for row in supervised_rows] == [
        row.as_row() for row in plain_rows
    ]
    overhead = supervised_s / plain_s - 1 if plain_s else 0.0
    within_gate = overhead < 0.05 or (supervised_s - plain_s) < 0.25
    print(
        f"\nsupervisor overhead gate [{grid_spec}]: supervised "
        f"{supervised_s:.3f}s vs bare pool {plain_s:.3f}s -> "
        f"{overhead:+.1%} (best of {repeats}; rows "
        f"{'identical' if identical else 'DIVERGE'}, gate "
        f"{'ok' if within_gate else 'EXCEEDED'})"
    )
    return {
        "grid": grid_spec,
        "samples": samples,
        "workers": workers,
        "repeats": repeats,
        "supervised_s": round(supervised_s, 4),
        "unsupervised_s": round(plain_s, 4),
        "overhead": round(overhead, 4),
        "rows_identical": identical,
        "within_gate": within_gate,
    }


def _resume_workload(quick: bool):
    if quick:
        return ("hypercube:d=3..4/kernel/t=1..2/sizes:1-2", 6)
    return ("hypercube:d=3..5/kernel/t=1..2/sizes:1-3", 20)


def _bench_resume(quick: bool) -> dict:
    grid_spec, samples = _resume_workload(quick)
    scenarios = expand_grids([grid_spec])
    run = suite_manifest(scenarios, samples, 7, None)

    from repro.scenarios import suite as suite_module

    evaluated = []
    original_eval = suite_module._eval_suite_task

    def counting_eval(task):
        evaluated.append(task.campaign_key)
        return original_eval(task)

    suite_module._eval_suite_task = counting_eval
    try:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "rows.jsonl")

            start = time.perf_counter()
            with ResultStore.open(path, run) as store:
                full_rows = run_scenario_suite(
                    scenarios, samples=samples, seed=7, store=store
                )
            full_seconds = time.perf_counter() - start
            full_tasks = len(evaluated)
            full_text = open(path).read()
            full_report = render_scaling_report(
                result_frame(row.record() for row in full_rows), run
            )

            # Kill simulation: keep the manifest, half the rows, and a
            # truncated partial line.
            lines = full_text.splitlines(keepends=True)
            keep = 1 + (len(lines) - 1) // 2
            with open(path, "w") as handle:
                handle.write("".join(lines[:keep]) + lines[keep][:25])

            evaluated.clear()
            start = time.perf_counter()
            with ResultStore.open(path, run) as store:
                resumed_rows = run_scenario_suite(
                    scenarios, samples=samples, seed=7, store=store
                )
            resume_seconds = time.perf_counter() - start
            resume_tasks = len(evaluated)
            resumed_text = open(path).read()
            resumed_report = render_scaling_report(
                result_frame(row.record() for row in resumed_rows), run
            )
    finally:
        suite_module._eval_suite_task = original_eval

    store_identical = resumed_text == full_text
    report_identical = resumed_report == full_report
    print(
        f"\nresume gate [{grid_spec}]: full run {full_tasks} tasks "
        f"({full_seconds:.3f}s), resumed run {resume_tasks} tasks "
        f"({resume_seconds:.3f}s); store "
        f"{'byte-identical' if store_identical else 'DIVERGES'}, report "
        f"{'identical' if report_identical else 'DIVERGES'}"
    )
    print()
    print(full_report)
    return {
        "grid": grid_spec,
        "samples": samples,
        "campaign_rows": len(full_rows),
        "full_tasks": full_tasks,
        "resumed_tasks": resume_tasks,
        "full_s": round(full_seconds, 4),
        "resume_s": round(resume_seconds, 4),
        "store_byte_identical": store_identical,
        "report_identical": report_identical,
        "skipped_any_work": resume_tasks < full_tasks,
    }


def _merge_workload(quick: bool):
    if quick:
        return ("cycle:n=10..12/{}/t=1/sizes:1-2", ("kernel", "circular"), 8)
    return ("cycle:n=16..24/{}/t=1/sizes:1-2", ("kernel", "circular"), 20)


def _bench_strategy_merge(quick: bool) -> dict:
    template, strategies, samples = _merge_workload(quick)
    combined_spec = template.format("|".join(strategies))
    combined_scenarios = expand_grids([combined_spec])
    combined_run = suite_manifest(combined_scenarios, samples, 7, None)

    with tempfile.TemporaryDirectory() as tmp:
        combined_path = os.path.join(tmp, "combined.jsonl")
        start = time.perf_counter()
        with ResultStore.open(combined_path, combined_run) as store:
            combined_rows = run_scenario_suite(
                combined_scenarios, samples=samples, seed=7, store=store
            )
        combined_seconds = time.perf_counter() - start
        combined_report = render_scaling_report(
            result_frame(row.record() for row in combined_rows), combined_run
        )

        split_paths = []
        start = time.perf_counter()
        for strategy in strategies:
            scenarios = expand_grids([template.format(strategy)])
            path = os.path.join(tmp, f"{strategy}.jsonl")
            split_paths.append(path)
            run = suite_manifest(scenarios, samples, 7, None)
            with ResultStore.open(path, run) as store:
                run_scenario_suite(
                    scenarios, samples=samples, seed=7, store=store
                )
        split_seconds = time.perf_counter() - start

        merged = merge_result_stores(split_paths)
        combined_store = ResultStore.load(combined_path)
        records_identical = set(combined_store.keys()) == set(
            merged.keys()
        ) and all(
            combined_store.get(key) == merged.get(key) for key in merged.keys()
        )
        # Render with the merged store's own manifest — the real
        # `repro report a b` path.  Headers legitimately differ (the merged
        # scenario union is in per-store order, the combined run's is in
        # expansion order); the *table* must match byte for byte.
        merged_report = render_scaling_report(merged.frame, merged.run)

        def _table_of(report: str) -> str:
            return report[report.index("| family") :]

        report_identical = _table_of(merged_report) == _table_of(
            combined_report
        )
        comparison_layout = any(
            f"{strategy} t=" in merged_report for strategy in strategies
        )

    print(
        f"\nstrategy-merge gate [{combined_spec}]: combined run "
        f"{combined_seconds:.3f}s vs split runs {split_seconds:.3f}s; "
        f"records {'identical' if records_identical else 'DIVERGE'}, "
        f"merged comparison table "
        f"{'identical' if report_identical else 'DIVERGES'}"
    )
    print()
    print(merged_report)
    return {
        "grid": combined_spec,
        "samples": samples,
        "campaign_rows": len(combined_rows),
        "combined_s": round(combined_seconds, 4),
        "split_s": round(split_seconds, 4),
        "records_identical": records_identical,
        "report_identical": report_identical,
        "comparison_layout": comparison_layout,
    }


def run(quick: bool, json_path: str) -> int:
    payload = _bench_shared_payload(quick)
    overhead = _bench_supervisor_overhead(quick)
    resume = _bench_resume(quick)
    merge = _bench_strategy_merge(quick)

    document = {
        "generated_by": "benchmarks/bench_grid.py",
        "mode": "quick" if quick else "full",
        "shared_payload": payload,
        "supervisor_overhead": overhead,
        "resume": resume,
        "strategy_merge": merge,
    }
    with open(json_path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {json_path}")

    failures = []
    if not payload["rows_identical"]:
        failures.append("shared-payload rows diverge from per-worker rebuild rows")
    if not overhead["rows_identical"]:
        failures.append("supervised rows diverge from bare-pool rows")
    if not overhead["within_gate"]:
        failures.append(
            f"supervisor clean-path overhead {overhead['overhead']:+.1%} "
            "exceeds the 5% gate"
        )
    if not resume["store_byte_identical"]:
        failures.append("resumed store is not byte-identical to the full run")
    if not resume["report_identical"]:
        failures.append("resumed report differs from the full run's")
    if not resume["skipped_any_work"]:
        failures.append("resume recomputed every task (no work was skipped)")
    if not merge["records_identical"]:
        failures.append("merged split-run records diverge from the combined run")
    if not merge["report_identical"]:
        failures.append("merged comparison table differs from the combined run's")
    if not merge["comparison_layout"]:
        failures.append("merged report lacks strategy × t column groups")
    if failures:
        for failure in failures:
            print(f"FAIL — {failure}")
        return 1
    print(
        f"PASS — payload rows identical ({payload['speedup']:.2f}x), "
        f"supervisor overhead {overhead['overhead']:+.1%}, resume "
        f"skipped {resume['full_tasks'] - resume['resumed_tasks']} of "
        f"{resume['full_tasks']} tasks with byte-identical store + report, "
        f"split strategy runs merged to the combined run's table"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instances (CI smoke run)",
    )
    parser.add_argument(
        "--json",
        default=_DEFAULT_JSON,
        help="path of the machine-readable results file (default: repo-root "
        "BENCH_grid.json)",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.json)


if __name__ == "__main__":
    sys.exit(main())

"""Serving-layer benchmark: compiled artifacts under a synthetic query storm.

Three claims are measured; the first two are enforced as CI gates:

1. **Batch queries run at memory-bandwidth speed.**  A synthetic
   million-query workload (random ``(source, target)`` pairs) is answered
   twice from the same engine view: once through the per-query Python loop
   (``view.next_hop_id`` per pair — the honest scalar baseline) and once
   through the vectorised batch API (``view.batch_next_hop_ids``, two numpy
   gathers + a shift for the whole chunk).  Gate: batch throughput >= 10x
   the per-query loop.  Without numpy the vectorised path does not exist,
   so the gate is recorded as skipped instead of failed (CI runs it on the
   numpy matrix leg).

2. **Incremental fault updates beat re-evaluation.**  A flapping fault
   workload — nodes failing and recovering in a rotating pattern, with a
   surviving-diameter query after every event — is served twice: once
   through the engine's delta path (``fail``/``restore`` via
   ``EvalCursor.with_added`` plus the hot-cursor LRU) and once by full
   re-evaluation (a fresh ``index.surviving_diameter(faults)`` per event,
   which is what serving without the incremental path would do).  Gate:
   incremental >= 5x faster.

3. **Repeated identical queries stop allocating** (micro-benchmark note).
   ``EvalCursor`` caches its sorted fault-id list and fault-set view, and
   ``diameter(cap=)`` memoises values and lower bounds — so a hot fault
   state answers repeated diameter queries from cache.  The note records
   the first (cold) evaluation against the steady-state repeat rate; no
   gate, the number is there to catch churn regressions by eye.

Results are persisted to ``BENCH_serving.json`` at the repo root.

Run directly (no pytest needed)::

    python benchmarks/bench_serving.py          # full suite (1M queries)
    python benchmarks/bench_serving.py --quick  # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time

if __package__ in (None, ""):  # allow running as a plain script from anywhere
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core import build_routing
from repro.core.np_kernel import numpy_available
from repro.core.route_index import RouteIndex
from repro.graphs import generators
from repro.serving import ServingEngine, compile_routing_artifact, load_artifact

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_JSON = os.path.join(_REPO_ROOT, "BENCH_serving.json")

#: Chunk width for the batch API (a serving frontend would batch at most
#: this many queries per request).
_BATCH_CHUNK = 65536


def _build_artifact(n: int):
    """Compile a served artifact for an n-node circulant network."""
    graph = generators.circulant_graph(n, [1, 2])
    result = build_routing(graph, strategy="kernel")
    artifact = compile_routing_artifact(graph, result.routing, scheme=result.scheme)
    return graph, result, artifact


def _bench_batch_throughput(quick: bool) -> dict:
    """Gate 1: vectorised batch >= 10x the per-query Python loop."""
    n = 64 if quick else 200
    queries = 100_000 if quick else 1_000_000
    _graph, _result, artifact = _build_artifact(n)
    engine = ServingEngine(artifact)
    # Serve a degraded network: one failed node, so the bit test against the
    # surviving rows is live (the fault-free fast path would skip it).
    engine.fail(artifact.nodes[n // 3])
    view = engine.view()

    rng = random.Random(20240917)
    sources = [rng.randrange(n) for _ in range(queries)]
    targets = [rng.randrange(n) for _ in range(queries)]

    # Per-query Python loop (scalar baseline).
    next_hop_id = view.next_hop_id
    start = time.perf_counter()
    scalar = [next_hop_id(s, t) for s, t in zip(sources, targets)]
    loop_seconds = time.perf_counter() - start

    vectorised = numpy_available()
    batch_seconds = None
    identical = True
    if vectorised:
        import numpy as np

        # The batch side of the workload arrives as id arrays (what a
        # frontend decodes off the wire); array-in/array-out keeps the
        # measured path free of per-element container conversion.
        np_sources = np.asarray(sources, dtype=np.int64)
        np_targets = np.asarray(targets, dtype=np.int64)
        chunks = []
        start = time.perf_counter()
        for lo in range(0, queries, _BATCH_CHUNK):
            chunks.append(
                view.batch_next_hop_ids(
                    np_sources[lo : lo + _BATCH_CHUNK],
                    np_targets[lo : lo + _BATCH_CHUNK],
                )
            )
        batch_seconds = time.perf_counter() - start
        identical = np.concatenate(chunks).tolist() == scalar

    loop_qps = queries / loop_seconds
    row = {
        "n": n,
        "queries": queries,
        "faults": 1,
        "loop_s": round(loop_seconds, 4),
        "loop_qps": round(loop_qps),
        "vectorised": vectorised,
        "answers_identical": identical,
    }
    if vectorised:
        batch_qps = queries / batch_seconds
        speedup = batch_qps / loop_qps
        row.update(
            batch_s=round(batch_seconds, 4),
            batch_qps=round(batch_qps),
            speedup=round(speedup, 2),
            within_gate=speedup >= 10.0 and identical,
        )
        print(
            f"batch gate [circulant n={n}, {queries:,} queries]: per-query "
            f"loop {loop_qps:,.0f} q/s vs batch {batch_qps:,.0f} q/s -> "
            f"{speedup:.1f}x (answers "
            f"{'identical' if identical else 'DIVERGE'}, gate "
            f"{'ok' if row['within_gate'] else 'MISSED'})"
        )
    else:
        row.update(
            batch_s=None, batch_qps=None, speedup=None, within_gate=None
        )
        print(
            f"batch gate [circulant n={n}]: numpy unavailable — vectorised "
            f"path absent, gate skipped (loop {loop_qps:,.0f} q/s)"
        )
    return row


def _fault_events(pool, events):
    """A flapping workload: rotate through ``pool``, failing then restoring."""
    sequence = []
    active = []
    for step in range(events):
        node = pool[step % len(pool)]
        if node in active:
            sequence.append(("restore", node))
            active.remove(node)
        else:
            sequence.append(("fail", node))
            active.append(node)
    return sequence


def _bench_incremental_updates(quick: bool) -> dict:
    """Gate 2: delta fail/restore >= 5x faster than full re-evaluation."""
    n = 64 if quick else 160
    events = 60 if quick else 240
    pool_size = 4 if quick else 6
    graph, result, artifact = _build_artifact(n)
    index = RouteIndex(graph, result.routing)
    pool = [artifact.nodes[(i * n) // pool_size] for i in range(pool_size)]
    sequence = _fault_events(pool, events)

    # Baseline: every event re-evaluates the new fault set from scratch.
    faults = set()
    start = time.perf_counter()
    baseline_values = []
    for action, node in sequence:
        (faults.add if action == "fail" else faults.discard)(node)
        baseline_values.append(index.surviving_diameter(faults))
    full_seconds = time.perf_counter() - start

    # Incremental: the engine applies deltas and memoises hot cursors.
    engine = ServingEngine(artifact, cursor_lru=64)
    start = time.perf_counter()
    incremental_values = []
    for action, node in sequence:
        if action == "fail":
            engine.fail(node)
        else:
            engine.restore(node)
        incremental_values.append(engine.surviving_diameter())
    incremental_seconds = time.perf_counter() - start

    identical = incremental_values == baseline_values
    speedup = full_seconds / incremental_seconds if incremental_seconds else float("inf")
    stats = engine.stats()
    within_gate = speedup >= 5.0 and identical
    print(
        f"incremental gate [circulant n={n}, {events} fault events]: full "
        f"re-eval {full_seconds:.3f}s vs delta path {incremental_seconds:.3f}s "
        f"-> {speedup:.1f}x ({stats['cursor_lru_hits']} cursor-cache hits; "
        f"values {'identical' if identical else 'DIVERGE'}, gate "
        f"{'ok' if within_gate else 'MISSED'})"
    )
    return {
        "n": n,
        "events": events,
        "fault_pool": pool_size,
        "full_reeval_s": round(full_seconds, 4),
        "incremental_s": round(incremental_seconds, 4),
        "speedup": round(speedup, 2),
        "cursor_lru_hits": stats["cursor_lru_hits"],
        "cursor_lru_misses": stats["cursor_lru_misses"],
        "generation": stats["generation"],
        "values_identical": identical,
        "within_gate": within_gate,
    }


def _bench_repeat_queries(quick: bool) -> dict:
    """Note 3: repeated identical diameter queries answer from cursor caches.

    The hot path used to rebuild the sorted fault-id list (numpy backend)
    and the fault-set frozenset per call; ``EvalCursor`` now computes both
    once per cursor, and ``diameter(cap=)`` memoises values and failed-cap
    lower bounds — so the steady-state repeat rate below is allocation-free
    table lookups.  Recorded as a note (no gate): a collapse of
    ``repeat_qps`` toward ``1 / cold_eval_s`` means churn crept back in.
    """
    n = 64 if quick else 160
    repeats = 20_000 if quick else 100_000
    _graph, _result, artifact = _build_artifact(n)
    engine = ServingEngine(artifact)
    for node in (artifact.nodes[1], artifact.nodes[n // 2]):
        engine.fail(node)

    start = time.perf_counter()
    first = engine.surviving_diameter(cap=float(n))
    cold_seconds = time.perf_counter() - start

    surviving_diameter = engine.surviving_diameter
    start = time.perf_counter()
    for _ in range(repeats):
        value = surviving_diameter(cap=float(n))
    repeat_seconds = time.perf_counter() - start
    repeat_qps = repeats / repeat_seconds if repeat_seconds else float("inf")

    print(
        f"repeat-query note [circulant n={n}]: cold capped eval "
        f"{cold_seconds * 1e3:.2f}ms, then {repeat_qps:,.0f} identical "
        f"queries/s from the memoised cursor (x{repeat_qps * cold_seconds:,.0f} "
        f"the cold rate)"
    )
    return {
        "n": n,
        "repeats": repeats,
        "cold_eval_s": round(cold_seconds, 6),
        "repeat_qps": round(repeat_qps),
        "value": None if value != value or value == float("inf") else value,
        "consistent": value == first,
    }


def _bench_disk_round_trip(quick: bool) -> dict:
    """Context numbers: compile, save, load and verify timings + sizes."""
    n = 64 if quick else 200
    graph, result, _ = _build_artifact(8)  # warm imports off the clock
    graph = generators.circulant_graph(n, [1, 2])
    result = build_routing(graph, strategy="kernel")

    start = time.perf_counter()
    artifact = compile_routing_artifact(graph, result.routing, scheme=result.scheme)
    compile_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.repart")
        start = time.perf_counter()
        artifact.save(path)
        save_seconds = time.perf_counter() - start
        size = os.path.getsize(path)
        start = time.perf_counter()
        loaded = load_artifact(path, expect_fingerprint=artifact.fingerprint)
        load_seconds = time.perf_counter() - start

    identical = (
        loaded.next_hop == artifact.next_hop
        and loaded.base_rows == artifact.base_rows
    )
    print(
        f"artifact round trip [circulant n={n}]: compile "
        f"{compile_seconds * 1e3:.1f}ms, save {save_seconds * 1e3:.1f}ms "
        f"({size:,} bytes), verified load {load_seconds * 1e3:.1f}ms "
        f"(tables {'identical' if identical else 'DIVERGE'})"
    )
    return {
        "n": n,
        "compile_s": round(compile_seconds, 4),
        "save_s": round(save_seconds, 4),
        "load_s": round(load_seconds, 4),
        "artifact_bytes": size,
        "tables_identical": identical,
    }


def run(quick: bool, json_path: str) -> int:
    batch = _bench_batch_throughput(quick)
    incremental = _bench_incremental_updates(quick)
    repeat = _bench_repeat_queries(quick)
    round_trip = _bench_disk_round_trip(quick)

    document = {
        "generated_by": "benchmarks/bench_serving.py",
        "mode": "quick" if quick else "full",
        "batch_throughput": batch,
        "incremental_updates": incremental,
        "repeat_queries": repeat,
        "disk_round_trip": round_trip,
    }
    with open(json_path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {json_path}")

    failures = []
    if batch["vectorised"]:
        if not batch["answers_identical"]:
            failures.append("batch answers diverge from the per-query loop")
        if not batch["within_gate"]:
            failures.append(
                f"batch throughput {batch['speedup']:.1f}x misses the 10x gate"
            )
    if not incremental["values_identical"]:
        failures.append("incremental diameters diverge from full re-evaluation")
    if not incremental["within_gate"]:
        failures.append(
            f"incremental updates {incremental['speedup']:.1f}x miss the 5x gate"
        )
    if not round_trip["tables_identical"]:
        failures.append("artifact tables diverge across the disk round trip")
    if failures:
        for failure in failures:
            print(f"FAIL — {failure}")
        return 1
    batch_note = (
        f"batch {batch['speedup']:.1f}x"
        if batch["vectorised"]
        else "batch gate skipped (no numpy)"
    )
    print(
        f"PASS — {batch_note}, incremental updates "
        f"{incremental['speedup']:.1f}x, {repeat['repeat_qps']:,} repeated "
        f"queries/s, artifact round trip verified"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instances (CI smoke run)",
    )
    parser.add_argument(
        "--json",
        default=_DEFAULT_JSON,
        help="path of the machine-readable results file (default: repo-root "
        "BENCH_serving.json)",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.json)


if __name__ == "__main__":
    sys.exit(main())

"""Experiment E12 — changing the network (Section 6): kernel + concentrator clique.

Adding at most ``t(t+1)/2`` links to make the kernel's separating set a clique
yields a ``(3, t)``-tolerant routing on the modified network.  The bench
verifies both halves of the claim: the added-edge budget and the surviving
diameter bound, and contrasts the result with the unmodified kernel routing on
the same graphs (the ablation: what do the extra links buy?).
"""

import pytest

from repro.analysis import ExperimentRunner, format_table
from repro.core import clique_augmented_kernel_routing, kernel_routing
from repro.graphs import generators, synthetic


def _workloads():
    return [
        ("circulant-10(1,2)", generators.circulant_graph(10, [1, 2]), 3),
        ("circulant-14(1,2)", generators.circulant_graph(14, [1, 2]), 3),
        ("kernel-test-t2", synthetic.kernel_test_graph(t=2), 2),
        ("cycle-16", generators.cycle_graph(16), 1),
    ]


@pytest.mark.benchmark(group="augmentation")
def test_section6_clique_augmentation_3_t(benchmark, experiment_log):
    """E12: (3, t)-tolerance of the clique-augmented kernel routing."""

    def run():
        runner = ExperimentRunner(exhaustive_limit=800, seed=0)
        budgets = []
        for name, graph, t in _workloads():
            result = clique_augmented_kernel_routing(graph, t=t)
            budgets.append(
                {
                    "graph": name,
                    "t": t,
                    "added_edges": result.details["added_edge_count"],
                    "budget t(t+1)/2": result.details["added_edge_bound"],
                }
            )
            runner.run(
                "E12/clique",
                graph,
                lambda g, t=t: clique_augmented_kernel_routing(g, t=t),
                max_faults=t,
                diameter_bound=3,
            )
        return runner, budgets

    runner, budgets = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(runner.rows(), caption="E12 / Section 6: clique-augmented kernel routing"))
    print(format_table(budgets, caption="E12: added-edge budgets"))
    for record, budget in zip(runner.records, budgets):
        experiment_log(
            "E12/clique",
            "<= 3 (and <= t(t+1)/2 edges)",
            f"{record.measured_worst} ({budget['added_edges']} edges)",
            record.graph_name,
        )
        assert record.holds, record.as_row()
        assert budget["added_edges"] <= budget["budget t(t+1)/2"]


@pytest.mark.benchmark(group="augmentation")
def test_augmentation_ablation_vs_plain_kernel(benchmark, experiment_log):
    """E12b (ablation): the added clique improves the worst case vs the plain kernel."""

    def run():
        rows = []
        for name, graph, t in _workloads():
            plain = ExperimentRunner(exhaustive_limit=800, seed=0)
            plain_record = plain.run(
                "kernel", graph, lambda g, t=t: kernel_routing(g, t=t),
                max_faults=t, diameter_bound=max(2 * t, 4),
            )
            augmented = ExperimentRunner(exhaustive_limit=800, seed=0)
            augmented_record = augmented.run(
                "kernel+clique", graph,
                lambda g, t=t: clique_augmented_kernel_routing(g, t=t),
                max_faults=t, diameter_bound=3,
            )
            rows.append(
                {
                    "graph": name,
                    "t": t,
                    "kernel worst": plain_record.measured_worst,
                    "kernel+clique worst": augmented_record.measured_worst,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, caption="E12b: ablation — plain kernel vs clique-augmented kernel"))
    for row in rows:
        experiment_log(
            "E12b/ablation",
            "clique <= kernel",
            f"{row['kernel+clique worst']} vs {row['kernel worst']}",
            row["graph"],
        )
        assert row["kernel+clique worst"] <= 3
        assert row["kernel+clique worst"] <= row["kernel worst"]

"""Shared helpers for the benchmark suite.

Every benchmark corresponds to one experiment row of DESIGN.md / EXPERIMENTS.md
(a theorem, remark, lemma or figure of the paper).  Benchmarks use
pytest-benchmark to time the expensive step (constructing the routing and/or
searching fault sets) and then *assert* that the measured worst surviving
diameter respects the paper's bound, so `pytest benchmarks/ --benchmark-only`
doubles as the reproduction's verification run.

Run with ``-s`` to see the per-experiment tables printed by each bench.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.analysis import format_table

#: Collected "paper vs measured" rows, printed at the end of the session.
_SUMMARY_ROWS: List[Dict[str, object]] = []


def record_experiment(
    experiment: str,
    paper_bound: object,
    measured: object,
    graph_name: str,
    notes: str = "",
) -> None:
    """Register one experiment outcome for the end-of-session summary."""
    _SUMMARY_ROWS.append(
        {
            "experiment": experiment,
            "graph": graph_name,
            "paper_bound": paper_bound,
            "measured": measured,
            "notes": notes,
        }
    )


@pytest.fixture
def experiment_log():
    """Fixture exposing :func:`record_experiment` to individual benches."""
    return record_experiment


def pytest_sessionfinish(session, exitstatus):
    if _SUMMARY_ROWS:
        print()
        print(format_table(_SUMMARY_ROWS, caption="=== Paper vs measured (all experiments) ==="))

"""Scenario-layer benchmark: bounded-decision campaigns + determinism gate.

Two claims are measured and enforced:

1. **Bounded decisions beat exact diameters.**  On the 200-node battery
   (``circulant:n=200,offsets=1+2`` under the kernel routing) the same
   batteries are evaluated twice — once exactly (``run_campaign``), once as
   bounded decisions (``run_campaign(bound=B)``) with the Theorem 4 bound —
   at fault sizes above the guarantee, where a tolerance table is the
   question being asked.  The decision path must be at least
   ``TARGET_DECISION_SPEEDUP`` faster end-to-end (quick mode only requires
   it not to be slower).

2. **Scenario campaigns are byte-identical across interpreter runs.**  The
   exact CLI invocation from the acceptance criterion — ``repro campaign
   --scenario ... --bound ... --seed S`` over six graph families — is run in
   two subprocesses with different ``PYTHONHASHSEED`` values; their stdout
   must match byte for byte (this exercises registry parsing, deterministic
   construction, fingerprints and the suite runner end to end).

Results are persisted to ``BENCH_scenarios.json`` at the repo root.

Run directly (no pytest needed)::

    python benchmarks/bench_scenarios.py          # full suite
    python benchmarks/bench_scenarios.py --quick  # CI smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import List

if __package__ in (None, ""):  # allow running as a plain script from anywhere
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.analysis import format_table
from repro.core import RouteIndex, kernel_routing
from repro.faults import CampaignEngine
from repro.graphs import generators
from repro.scenarios import run_scenario_suite

#: Required end-to-end advantage of the decision path on the 200-node battery.
TARGET_DECISION_SPEEDUP = 1.5

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_JSON = os.path.join(_REPO_ROOT, "BENCH_scenarios.json")

#: Scenario specs (>= 5 distinct graph families) for the determinism gate.
DETERMINISM_SCENARIOS = [
    "hypercube:d=4/kernel/sizes:1,2",
    "butterfly:d=3/kernel/sizes:1,2",
    "debruijn:base=2,d=4/kernel/sizes:1,2",
    "circulant:n=24,offsets=1+2/kernel/random:p=0.08",
    "flower:t=2,k=9/circular/exhaustive:f=1",
    "kernel-test:t=2/kernel/sizes:1",
]


def _decision_workload(quick: bool):
    """Return ``(name, graph, sizes, samples, bound)`` for the speed gate."""
    if quick:
        return ("circulant-60", generators.circulant_graph(60, [1, 2]), [4, 6], 16, 4)
    return ("circulant-200", generators.circulant_graph(200, [1, 2]), [5, 8], 40, 4)


def _bench_decisions(quick: bool) -> dict:
    name, graph, sizes, samples, bound = _decision_workload(quick)
    result = kernel_routing(graph)
    index = RouteIndex(graph, result.routing)
    engine = CampaignEngine(graph, result.routing, index=index)

    rows = []
    exact_total = 0.0
    decision_total = 0.0
    for size in sizes:
        start = time.perf_counter()
        exact = engine.run_campaign(size, samples=samples, seed=13)
        exact_seconds = time.perf_counter() - start

        start = time.perf_counter()
        decision = engine.run_campaign(size, samples=samples, seed=13, bound=bound)
        decision_seconds = time.perf_counter() - start

        # Same batteries, same semantics: a violation iff the exact maximum
        # (counting disconnections) exceeds the bound.
        exact_violated = (
            exact.max_diameter > bound or exact.disconnected_fraction > 0
        )
        assert decision.holds == (not exact_violated), (
            f"decision campaign diverged from exact evaluation at size {size}"
        )

        exact_total += exact_seconds
        decision_total += decision_seconds
        rows.append(
            {
                "family": name,
                "faults": size,
                "samples": samples,
                "bound": bound,
                "exact_s": round(exact_seconds, 4),
                "decision_s": round(decision_seconds, 4),
                "speedup": f"{exact_seconds / decision_seconds:.2f}x",
                "violations": decision.violations,
            }
        )

    speedup = exact_total / decision_total if decision_total else float("inf")
    print(
        format_table(
            rows,
            caption=(
                "Bounded-decision campaigns vs exact diameters "
                f"({name}, bound={bound})"
            ),
        )
    )
    print(
        f"\nend-to-end: exact {exact_total:.3f}s, decisions {decision_total:.3f}s "
        f"-> {speedup:.2f}x"
    )
    return {
        "workload": name,
        "sizes": sizes,
        "samples": samples,
        "bound": bound,
        "exact_s": round(exact_total, 4),
        "decision_s": round(decision_total, 4),
        "speedup": round(speedup, 2),
        "per_size": rows,
    }


def _cli_campaign_stdout(hash_seed: str, workers: int) -> str:
    """Run the acceptance-criterion CLI invocation under one hash seed."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(_REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    command = [sys.executable, "-m", "repro", "campaign"]
    for spec in DETERMINISM_SCENARIOS:
        command += ["--scenario", spec]
    command += [
        "--bound", "6", "--seed", "7",
        "--samples", "12", "--workers", str(workers),
    ]
    completed = subprocess.run(
        command, capture_output=True, text=True, env=env, check=False
    )
    # Exit code 1 means "a bound violation was found" — a legitimate row
    # outcome; anything else is a real failure.
    if completed.returncode not in (0, 1):
        raise RuntimeError(
            f"repro campaign failed (exit {completed.returncode}):\n"
            f"{completed.stderr}"
        )
    return completed.stdout


def _strip_caption(stdout: str) -> str:
    """Drop the table caption (it names the worker count) — rows only."""
    return "\n".join(
        line for line in stdout.splitlines()
        if not line.startswith("Scenario suite (")
    )


def _bench_determinism(quick: bool) -> dict:
    """Byte-compare scenario-campaign rows across hash seeds / worker counts."""
    start = time.perf_counter()
    baseline = _cli_campaign_stdout("1", workers=1)
    other_seed = _cli_campaign_stdout("2", workers=1)
    sharded = _cli_campaign_stdout("3", workers=2 if quick else 4)
    elapsed = time.perf_counter() - start
    identical_across_seeds = baseline == other_seed
    identical_across_workers = _strip_caption(baseline) == _strip_caption(sharded)
    print(
        f"\ndeterminism gate over {len(DETERMINISM_SCENARIOS)} scenarios "
        f"({elapsed:.1f}s): hash seeds "
        f"{'MATCH' if identical_across_seeds else 'DIVERGE'}, worker counts "
        f"{'MATCH' if identical_across_workers else 'DIVERGE'}"
    )
    return {
        "scenarios": DETERMINISM_SCENARIOS,
        "identical_across_hash_seeds": identical_across_seeds,
        "identical_across_worker_counts": identical_across_workers,
        "elapsed_s": round(elapsed, 2),
    }


def _suite_snapshot(quick: bool) -> List[dict]:
    """Persist one small scenario-suite run (rows incl. fingerprints)."""
    samples = 8 if quick else 20
    rows = run_scenario_suite(
        DETERMINISM_SCENARIOS, samples=samples, seed=7, bound=6
    )
    flat = []
    for row in rows:
        entry = row.as_row()
        entry["fingerprint"] = row.fingerprint  # full digest in the JSON
        flat.append(entry)
    print(format_table([row.as_row() for row in rows], caption="Scenario suite snapshot"))
    return flat


def run(quick: bool, json_path: str) -> int:
    decisions = _bench_decisions(quick)
    determinism = _bench_determinism(quick)
    suite_rows = _suite_snapshot(quick)

    payload = {
        "generated_by": "benchmarks/bench_scenarios.py",
        "mode": "quick" if quick else "full",
        "bounded_decisions": decisions,
        "determinism": determinism,
        "suite_rows": suite_rows,
        "targets": {"decision_speedup_target": TARGET_DECISION_SPEEDUP},
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {json_path}")

    ok = determinism["identical_across_hash_seeds"] and determinism[
        "identical_across_worker_counts"
    ]
    if not ok:
        print("FAIL — scenario campaigns are not reproducible")
        return 1
    if quick:
        if decisions["speedup"] < 1.0:
            print("quick mode: FAIL — decision path slower than exact evaluation")
            return 1
        print("quick mode: determinism gate passed, decision path not slower")
        return 0
    if decisions["speedup"] < TARGET_DECISION_SPEEDUP:
        print(
            f"FAIL — decision speedup {decisions['speedup']:.2f}x below target "
            f"{TARGET_DECISION_SPEEDUP:.1f}x"
        )
        return 1
    print(
        f"PASS — decisions {decisions['speedup']:.2f}x "
        f"(target >= {TARGET_DECISION_SPEEDUP:.1f}x), determinism gates green"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instance + relaxed gate (CI smoke run)",
    )
    parser.add_argument(
        "--json",
        default=_DEFAULT_JSON,
        help="path of the machine-readable results file (default: repo-root "
        "BENCH_scenarios.json)",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.json)


if __name__ == "__main__":
    sys.exit(main())

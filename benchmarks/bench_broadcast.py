"""Experiment E13 — route-counter broadcast rounds vs the surviving diameter (Section 1).

Section 1 claims that the number of broadcast rounds needed to recompute a
routing table after failures is bounded by the diameter of the surviving route
graph, using the route-counter protocol.  The bench runs the protocol from
every surviving node on several constructions and fault sets and checks the
measured maximum number of rounds against (a) the surviving diameter of the
concrete instance and (b) the construction's proven diameter bound.
"""

import pytest

from repro.analysis import format_table
from repro.core import (
    circular_routing,
    kernel_routing,
    surviving_diameter,
    tricircular_routing,
    unidirectional_bipolar_routing,
)
from repro.graphs import generators, synthetic
from repro.network import broadcast_rounds_from_all


def _scenarios():
    flower, flowers = synthetic.flower_graph(t=1, k=15)
    two_trees, r1, r2 = synthetic.two_trees_graph(t=2)
    circulant = generators.circulant_graph(12, [1, 2])
    cycle = generators.cycle_graph(16)
    return [
        ("kernel / circulant-12", circulant, kernel_routing(circulant), [set(), {0}, {0, 6}]),
        ("circular / cycle-16", cycle, circular_routing(cycle), [set(), {3}]),
        ("tricircular / flower-t1", flower, tricircular_routing(flower, t=1, concentrator=flowers), [set(), {flowers[0]}]),
        (
            "bipolar-uni / two-trees-t2",
            two_trees,
            unidirectional_bipolar_routing(two_trees, t=2, roots=(r1, r2)),
            [set(), {("branch", 1, 0)}],
        ),
    ]


@pytest.mark.benchmark(group="broadcast")
def test_broadcast_rounds_bounded_by_surviving_diameter(benchmark, experiment_log):
    """E13: max broadcast rounds <= surviving diameter <= proven bound."""
    scenarios = _scenarios()

    def run():
        rows = []
        for label, graph, result, fault_sets in scenarios:
            for faults in fault_sets:
                diam = surviving_diameter(graph, result.routing, faults)
                rounds = broadcast_rounds_from_all(graph, result.routing, faults=faults)
                rows.append(
                    {
                        "scenario": label,
                        "faults": len(faults),
                        "max_rounds": max(rounds.values()),
                        "surviving_diam": diam,
                        "proven_bound": result.guarantee.diameter_bound,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, caption="E13 / Section 1: broadcast rounds vs surviving diameter"))
    for row in rows:
        experiment_log(
            "E13/broadcast",
            f"rounds <= diam <= {row['proven_bound']}",
            f"{row['max_rounds']} <= {row['surviving_diam']}",
            row["scenario"],
        )
        assert row["max_rounds"] <= row["surviving_diam"]
        if row["faults"] <= 0 or row["faults"] <= row["proven_bound"]:
            assert row["surviving_diam"] <= row["proven_bound"]
